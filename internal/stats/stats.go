// Package stats implements the paper's measurement methodology: per-test
// sample collection, the middle-80 % trimmed mean ("the first and last
// 10 % (in terms of execution time) were neglected; only the middle 80 %
// of the timings was used to calculate the average"), and small helpers
// for assembling result series and tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary condenses one measurement's samples.
type Summary struct {
	N           int
	Min, Max    float64
	Mean        float64
	TrimmedMean float64 // middle-80% mean, the paper's estimator
	StdDev      float64
}

// Summarize computes a Summary over xs using the paper's 10 % trim.
func Summarize(xs []float64) Summary {
	return SummarizeTrim(xs, 0.10)
}

// SummarizeTrim computes a Summary trimming frac of the samples from each
// end (sorted by value) for the trimmed mean.
func SummarizeTrim(xs []float64, frac float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.StdDev = math.Sqrt(sq / float64(len(xs)))
	s.TrimmedMean = TrimmedMean(xs, frac)
	return s
}

// TrimmedMean sorts xs, drops frac of the samples at each end, and
// averages the rest. frac is clamped to [0, 0.5); with too few samples to
// trim it degrades to the plain mean.
func TrimmedMean(xs []float64, frac float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if frac < 0 {
		frac = 0
	}
	if frac >= 0.5 {
		frac = 0.49
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	drop := int(float64(len(sorted)) * frac)
	kept := sorted[drop : len(sorted)-drop]
	if len(kept) == 0 {
		kept = sorted
	}
	var sum float64
	for _, x := range kept {
		sum += x
	}
	return sum / float64(len(kept))
}

// Point is one (x, y) pair of a result series.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve of an experiment (e.g. "push-pull" in
// Fig. 3).
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Y returns the y value at x, or NaN.
func (s *Series) Y(x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return math.NaN()
}

// Table is a rendered experiment result: one row per x value, one column
// per series — the shape of the paper's figures.
type Table struct {
	Title   string
	XLabel  string
	YLabel  string
	Series  []*Series
	Comment string
}

// NewTable creates an empty table.
func NewTable(title, xLabel, yLabel string) *Table {
	return &Table{Title: title, XLabel: xLabel, YLabel: yLabel}
}

// AddSeries creates, attaches and returns a new series.
func (t *Table) AddSeries(label string) *Series {
	s := &Series{Label: label}
	t.Series = append(t.Series, s)
	return s
}

// xs returns the sorted union of all series' x values.
func (t *Table) xs() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				out = append(out, p.X)
			}
		}
	}
	sort.Float64s(out)
	return out
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	if t.Comment != "" {
		fmt.Fprintf(&b, "# %s\n", t.Comment)
	}
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %16s", s.Label)
	}
	fmt.Fprintf(&b, "   (%s)\n", t.YLabel)
	for _, x := range t.xs() {
		fmt.Fprintf(&b, "%-12g", x)
		for _, s := range t.Series {
			y := s.Y(x)
			if math.IsNaN(y) {
				fmt.Fprintf(&b, " %16s", "-")
			} else {
				fmt.Fprintf(&b, " %16.2f", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, s := range t.Series {
		b.WriteByte(',')
		b.WriteString(s.Label)
	}
	b.WriteByte('\n')
	for _, x := range t.xs() {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range t.Series {
			y := s.Y(x)
			if math.IsNaN(y) {
				b.WriteString(",")
			} else {
				fmt.Fprintf(&b, ",%.3f", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
