package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-quantile of xs (p in [0, 1]) by linear
// interpolation between order statistics. It returns NaN for empty input
// and clamps p into range.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram is a fixed-width binning of samples, for jitter analysis of
// latency distributions (trimmed means hide exactly the tails a shared
// medium or a retransmission timeout produces).
type Histogram struct {
	Lo, Hi float64 // value range covered, [Lo, Hi]
	Counts []int   // one per bin
	Under  int     // samples below Lo (only when an explicit range is set)
	Over   int     // samples above Hi
	N      int     // total samples
	width  float64
}

// NewHistogram bins xs into bins equal-width buckets spanning the sample
// range. It returns nil for empty input or bins < 1.
func NewHistogram(xs []float64, bins int) *Histogram {
	if len(xs) == 0 || bins < 1 {
		return nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return NewHistogramRange(xs, bins, lo, hi)
}

// NewHistogramRange bins xs into bins equal-width buckets spanning
// [lo, hi]; samples outside are counted in Under/Over. It returns nil
// for empty input, bins < 1, or hi < lo.
func NewHistogramRange(xs []float64, bins int, lo, hi float64) *Histogram {
	if len(xs) == 0 || bins < 1 || hi < lo {
		return nil
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), N: len(xs)}
	if hi == lo {
		h.width = 1 // every in-range sample lands in bin 0
	} else {
		h.width = (hi - lo) / float64(bins)
	}
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x > hi:
			h.Over++
		default:
			// The division can overflow int for extreme float ranges
			// (denormal widths, ±1e308 spans); clamp through float64.
			pos := (x - lo) / h.width
			i := bins - 1
			if pos < float64(bins) {
				i = int(pos)
			}
			if i < 0 {
				i = 0
			}
			h.Counts[i]++
		}
	}
	return h
}

// BinRange reports the half-open value range [lo, hi) of bin i (the last
// bin is closed).
func (h *Histogram) BinRange(i int) (lo, hi float64) {
	return h.Lo + float64(i)*h.width, h.Lo + float64(i+1)*h.width
}

// Render draws the histogram as ASCII bars, one line per bin, scaled so
// the fullest bin spans width characters.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 50
	}
	maxCount := 1
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	if h.Under > 0 {
		fmt.Fprintf(&b, "%24s %6d\n", fmt.Sprintf("< %.2f", h.Lo), h.Under)
	}
	for i, c := range h.Counts {
		lo, hi := h.BinRange(i)
		bar := strings.Repeat("#", c*width/maxCount)
		fmt.Fprintf(&b, "[%9.2f, %9.2f) %6d %s\n", lo, hi, c, bar)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "%24s %6d\n", fmt.Sprintf("> %.2f", h.Hi), h.Over)
	}
	return b.String()
}
