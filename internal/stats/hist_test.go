package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 0.5); got != 5 {
		t.Errorf("median of {0,10} = %g, want 5", got)
	}
	if got := Percentile(xs, 0.9); got != 9 {
		t.Errorf("p90 of {0,10} = %g, want 9", got)
	}
}

func TestPercentileEdges(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty input did not return NaN")
	}
	if got := Percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single sample = %g, want 7", got)
	}
	// Out-of-range p clamps.
	if got := Percentile([]float64{1, 2}, -1); got != 1 {
		t.Errorf("p=-1 = %g, want 1", got)
	}
	if got := Percentile([]float64{1, 2}, 2); got != 2 {
		t.Errorf("p=2 = %g, want 2", got)
	}
}

func TestHistogramBinsAndRange(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h := NewHistogram(xs, 3)
	if h == nil {
		t.Fatal("nil histogram")
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(xs) || h.Under != 0 || h.Over != 0 {
		t.Errorf("binned %d of %d (under %d over %d)", total, len(xs), h.Under, h.Over)
	}
	lo, hi := h.BinRange(0)
	if lo != 0 || hi != 3 {
		t.Errorf("bin 0 range [%g, %g), want [0, 3)", lo, hi)
	}
}

func TestHistogramExplicitRangeCountsOutliers(t *testing.T) {
	xs := []float64{-5, 1, 2, 3, 99}
	h := NewHistogramRange(xs, 2, 0, 4)
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under %d over %d, want 1 and 1", h.Under, h.Over)
	}
	if h.Counts[0]+h.Counts[1] != 3 {
		t.Errorf("in-range count %d, want 3", h.Counts[0]+h.Counts[1])
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if NewHistogram(nil, 4) != nil {
		t.Error("empty input did not return nil")
	}
	if NewHistogram([]float64{1}, 0) != nil {
		t.Error("zero bins did not return nil")
	}
	// All-equal samples: one bin takes everything, no panic.
	h := NewHistogram([]float64{2, 2, 2}, 4)
	if h.Counts[0] != 3 {
		t.Errorf("all-equal samples: bin 0 = %d, want 3", h.Counts[0])
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogramRange([]float64{1, 1, 1, 9}, 2, 0, 10)
	out := h.Render(10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "##########") {
		t.Errorf("fullest bin not full-width: %q", lines[0])
	}
	if strings.Count(lines[1], "#") >= strings.Count(lines[0], "#") {
		t.Error("emptier bin drew a longer bar")
	}
}

// Property: percentile is monotone in p and bounded by min/max; the
// histogram conserves every sample.
func TestPercentileHistogramProperties(t *testing.T) {
	f := func(raw []float64, binsRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
			v := Percentile(xs, p)
			if v < prev || v < sorted[0] || v > sorted[len(sorted)-1] {
				return false
			}
			prev = v
		}
		bins := int(binsRaw)%8 + 1
		h := NewHistogram(xs, bins)
		total := h.Under + h.Over
		for _, c := range h.Counts {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
