package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTrimmedMeanDropsOutliers(t *testing.T) {
	// 10 samples: trim 10% from each end -> drop the 1 and the 1000.
	xs := []float64{1, 5, 5, 5, 5, 5, 5, 5, 5, 1000}
	if got := TrimmedMean(xs, 0.10); got != 5 {
		t.Errorf("trimmed mean = %g, want 5", got)
	}
}

func TestTrimmedMeanPlainWhenNoTrimPossible(t *testing.T) {
	xs := []float64{2, 4}
	if got := TrimmedMean(xs, 0.10); got != 3 {
		t.Errorf("mean of 2 samples = %g, want 3", got)
	}
}

func TestTrimmedMeanEmpty(t *testing.T) {
	if TrimmedMean(nil, 0.1) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestTrimmedMeanBetweenMinAndMax(t *testing.T) {
	property := func(raw []float64, fracRaw uint8) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		frac := float64(fracRaw%50) / 100
		m := TrimmedMean(xs, frac)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return m >= sorted[0]-1e-9 && m <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrimmedMeanInvariantUnderPermutation(t *testing.T) {
	a := []float64{9, 1, 7, 3, 5, 2, 8, 4, 6, 10}
	b := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if TrimmedMean(a, 0.1) != TrimmedMean(b, 0.1) {
		t.Error("trimmed mean depends on sample order")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.StdDev <= 0 {
		t.Error("stddev should be positive")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
}

func TestSeriesY(t *testing.T) {
	var s Series
	s.Add(10, 1.5)
	s.Add(20, 2.5)
	if s.Y(20) != 2.5 {
		t.Error("Y lookup failed")
	}
	if !math.IsNaN(s.Y(30)) {
		t.Error("missing x should be NaN")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Fig X", "size", "latency (us)")
	a := tab.AddSeries("push-pull")
	b := tab.AddSeries("push-all")
	a.Add(10, 7.5)
	a.Add(1000, 15.0)
	b.Add(10, 7.5)
	out := tab.Render()
	if !strings.Contains(out, "push-pull") || !strings.Contains(out, "push-all") {
		t.Errorf("render missing headers:\n%s", out)
	}
	if !strings.Contains(out, "7.50") {
		t.Errorf("render missing values:\n%s", out)
	}
	// push-all has no point at 1000: rendered as "-"
	if !strings.Contains(out, "-") {
		t.Errorf("render missing placeholder:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("t", "x", "y")
	s := tab.AddSeries("s1")
	s.Add(1, 2)
	csv := tab.CSV()
	want := "x,s1\n1,2.000\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestTableXsSortedUnion(t *testing.T) {
	tab := NewTable("t", "x", "y")
	a := tab.AddSeries("a")
	b := tab.AddSeries("b")
	a.Add(30, 1)
	a.Add(10, 1)
	b.Add(20, 1)
	lines := strings.Split(strings.TrimSpace(tab.Render()), "\n")
	rows := lines[2:] // skip title + header
	if len(rows) != 3 || !strings.HasPrefix(rows[0], "10") || !strings.HasPrefix(rows[1], "20") || !strings.HasPrefix(rows[2], "30") {
		t.Errorf("rows not sorted union:\n%s", tab.Render())
	}
}
