package stats

import (
	"math"
	"testing"
)

func TestQuantileSummaryEmpty(t *testing.T) {
	if q := QuantileSummary(nil); q != (Quantiles{}) {
		t.Errorf("QuantileSummary(nil) = %+v, want zero", q)
	}
}

func TestQuantileSummaryMatchesPercentile(t *testing.T) {
	xs := []float64{9, 1, 4, 7, 2, 8, 3, 6, 5, 10}
	q := QuantileSummary(xs)
	if q.Count != len(xs) {
		t.Errorf("Count = %d, want %d", q.Count, len(xs))
	}
	if q.Min != 1 || q.Max != 10 {
		t.Errorf("Min/Max = %g/%g, want 1/10", q.Min, q.Max)
	}
	if q.Mean != 5.5 {
		t.Errorf("Mean = %g, want 5.5", q.Mean)
	}
	// The quantiles must agree exactly with the exported Percentile
	// (same interpolation, sorted once).
	for _, tc := range []struct {
		p    float64
		got  float64
		name string
	}{
		{0.50, q.P50, "P50"},
		{0.90, q.P90, "P90"},
		{0.99, q.P99, "P99"},
	} {
		want := Percentile(xs, tc.p)
		if math.Abs(tc.got-want) > 1e-12 {
			t.Errorf("%s = %g, Percentile(xs, %g) = %g", tc.name, tc.got, tc.p, want)
		}
	}
}

func TestQuantileSummarySingleSample(t *testing.T) {
	q := QuantileSummary([]float64{42})
	want := Quantiles{Count: 1, Mean: 42, Min: 42, P50: 42, P90: 42, P99: 42, Max: 42}
	if q != want {
		t.Errorf("QuantileSummary([42]) = %+v, want %+v", q, want)
	}
}

func TestQuantileSummaryDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	QuantileSummary(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}
