package stats

import "sort"

// Quantiles condenses samples for dashboards and regression gates:
// count, mean, min/max and the p50/p90/p99 order statistics. Where
// Summary carries the paper's trimmed-mean estimator, Quantiles carries
// the tail — the numbers a perf trajectory or a backoff spread is
// judged by. The JSON encoding is stable, so the struct can sit inside
// digested results.
type Quantiles struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// QuantileSummary computes Quantiles over xs. The percentiles use the
// same linear interpolation between order statistics as Percentile, but
// the samples are sorted once. Empty input returns the zero value.
func QuantileSummary(xs []float64) Quantiles {
	if len(xs) == 0 {
		return Quantiles{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	q := Quantiles{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
	}
	q.P50 = percentileSorted(sorted, 0.50)
	q.P90 = percentileSorted(sorted, 0.90)
	q.P99 = percentileSorted(sorted, 0.99)
	return q
}

// percentileSorted is Percentile over already-sorted input.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
