package mem

import (
	"testing"
	"testing/quick"

	"pushpull/internal/sim"
)

func TestCycleTime(t *testing.T) {
	cfg := PentiumPro200()
	if got := cfg.CycleTime(); got != 5 {
		t.Errorf("cycle time = %dns, want 5ns at 200 MHz", got)
	}
	if got := cfg.Cycles(100_000); got != 500*sim.Microsecond {
		t.Errorf("100k cycles = %v, want 500µs", got)
	}
}

func TestTransferTime(t *testing.T) {
	if got := TransferTime(100_000_000, 100_000_000); got != sim.Duration(sim.Second) {
		t.Errorf("100MB at 100MB/s = %v, want 1s", got)
	}
	if got := TransferTime(0, 100); got != 0 {
		t.Errorf("zero bytes = %v, want 0", got)
	}
	if got := TransferTime(-5, 100); got != 0 {
		t.Errorf("negative bytes = %v, want 0", got)
	}
}

func TestCopyCostMonotonic(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewCopier(NewBus(e, PentiumPro200()))
	property := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return c.CopyCost(x) <= c.CopyCost(y)
	}
	if err := quick.Check(property, nil); err != nil {
		t.Error(err)
	}
}

func TestCopyCostHasStartup(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := PentiumPro200()
	c := NewCopier(NewBus(e, cfg))
	if got := c.CopyCost(1); got < cfg.CopyStartup {
		t.Errorf("tiny copy cost %v below startup %v", got, cfg.CopyStartup)
	}
	if c.CopyCost(0) != 0 {
		t.Error("zero-byte copy should be free")
	}
}

func TestCacheBonusAppliesOnlyToSmallCopies(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := PentiumPro200()
	c := NewCopier(NewBus(e, cfg))
	small := c.CopyCost(64 << 10) // 2*64K fits in 512K L2
	large := c.CopyCost(1 << 20)  // exceeds L2
	// per-byte rate of the small copy must be strictly better
	smallRate := float64(64<<10) / float64(small-cfg.CopyStartup)
	largeRate := float64(1<<20) / float64(large-cfg.CopyStartup)
	if smallRate <= largeRate {
		t.Errorf("cache-resident copy rate %.2f not better than streaming %.2f", smallRate, largeRate)
	}
}

func TestCopyOccupiesBusSerially(t *testing.T) {
	e := sim.NewEngine(1)
	bus := NewBus(e, PentiumPro200())
	c := NewCopier(bus)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		e.Go("copier", func(p *sim.Process) {
			c.Copy(p, 1<<20)
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	if len(ends) != 2 {
		t.Fatal("copies did not finish")
	}
	single := c.CopyCost(1 << 20)
	if ends[0] != sim.Time(single) {
		t.Errorf("first copy ended at %v, want %v", ends[0], single)
	}
	if ends[1] != sim.Time(2*single) {
		t.Errorf("second copy should serialize on bus: ended %v, want %v", ends[1], 2*single)
	}
	if bus.Contended() != 1 {
		t.Errorf("bus contended = %d, want 1", bus.Contended())
	}
}

func TestPIOSlowerThanCopy(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewCopier(NewBus(e, PentiumPro200()))
	if c.PIOCost(1024) <= c.CopyCost(1024) {
		t.Error("PIO into uncached device memory should cost more than a cached copy")
	}
}

func TestEffectiveCopyBandwidthNearPaper(t *testing.T) {
	// The paper reports 350.9 MB/s peak one-copy bandwidth at ~4000 B
	// including protocol overhead; the raw copy engine must therefore
	// stream a 4 KB block at better than that but below the 533 MB/s bus.
	e := sim.NewEngine(1)
	c := NewCopier(NewBus(e, PentiumPro200()))
	d := c.CopyCost(4096)
	rate := float64(4096) / d.Seconds() / 1e6
	if rate < 360 || rate > 533 {
		t.Errorf("4KB copy rate = %.1f MB/s, want within (360, 533)", rate)
	}
}
