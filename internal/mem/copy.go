package mem

import "pushpull/internal/sim"

// Copier performs timed memory copies on behalf of simulation processes.
// A copy occupies both the calling thread (the caller blocks for the copy
// duration) and the memory bus (concurrent copies on one node serialize).
type Copier struct {
	bus *Bus
}

// NewCopier returns a copier bound to bus.
func NewCopier(bus *Bus) *Copier { return &Copier{bus: bus} }

// CopyCost reports the duration of copying n bytes, without performing it.
// Small cache-resident copies run slightly faster than bus-limited streams.
func (c *Copier) CopyCost(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	cfg := c.bus.cfg
	rate := cfg.CopyBytesPerSec
	if 2*n <= cfg.L2Bytes && cfg.CacheBonus > 1 {
		rate = int64(float64(rate) * cfg.CacheBonus)
	}
	return cfg.CopyStartup + TransferTime(n, rate)
}

// Copy blocks p for the time it takes to copy n bytes, holding the bus.
func (c *Copier) Copy(p *sim.Process, n int) {
	if n <= 0 {
		return
	}
	c.bus.Occupy(p, c.CopyCost(n))
}

// PIOCost reports the duration of a programmed-I/O store of n bytes into
// uncached device memory (e.g. user-level copy into the NIC outgoing FIFO).
func (c *Copier) PIOCost(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	cfg := c.bus.cfg
	return cfg.CopyStartup + TransferTime(n, cfg.PIOBytesPerSec)
}

// PIO blocks p for a programmed-I/O transfer of n bytes, holding the bus.
func (c *Copier) PIO(p *sim.Process, n int) {
	if n <= 0 {
		return
	}
	c.bus.Occupy(p, c.PIOCost(n))
}

// Bus returns the bus the copier charges transfers to.
func (c *Copier) Bus() *Bus { return c.bus }
