package mem

import "pushpull/internal/sim"

// Bus is the node's shared memory bus. Block transfers (copies, DMA)
// acquire the bus for their transfer duration, so concurrent transfers on
// one node serialize and contention is visible in latency, as on the real
// machine.
type Bus struct {
	cfg Config
	res *sim.Resource
}

// NewBus returns a bus for the given memory configuration.
func NewBus(e *sim.Engine, cfg Config) *Bus {
	return &Bus{cfg: cfg, res: sim.NewResource(e, "membus")}
}

// Config returns the memory configuration backing the bus.
func (b *Bus) Config() Config { return b.cfg }

// TransferTime reports how long moving n bytes at rate bytesPerSec holds
// the bus, excluding fixed startup.
func TransferTime(n int, bytesPerSec int64) sim.Duration {
	if n <= 0 || bytesPerSec <= 0 {
		return 0
	}
	return sim.Duration(int64(n) * int64(sim.Second) / bytesPerSec)
}

// Occupy holds the bus for d. It is the building block for copies and DMA.
func (b *Bus) Occupy(p *sim.Process, d sim.Duration) {
	b.res.Use(p, d)
}

// PollAcquire is the tasklet-tier bus acquisition: it takes the bus if it
// is free, otherwise registers w for a wake and reports false. first must
// be true only on the initial attempt of a logical acquisition (see
// sim.Resource.PollAcquire). Pair a successful acquisition with Release
// after the transfer duration has been slept.
func (b *Bus) PollAcquire(w sim.Waiter, first bool) bool {
	return b.res.PollAcquire(w, first)
}

// Release frees the bus after a PollAcquire-based transfer.
func (b *Bus) Release() { b.res.Release() }

// BusyTime reports cumulative bus occupancy, for utilization accounting.
func (b *Bus) BusyTime() sim.Duration { return b.res.BusyTime() }

// Contended reports how many transfers had to wait for the bus.
func (b *Bus) Contended() uint64 { return b.res.Contended() }
