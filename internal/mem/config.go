// Package mem models the memory system of one SMP node: a shared memory
// bus with finite bandwidth and FIFO contention, and a copy-cost model for
// the memcpy-style block transfers that dominate messaging overhead.
//
// The model is calibrated to the paper's testbed, an ALR Revolution 6X6
// with four 200 MHz Pentium Pro processors and a 533 MB/s system bus
// (66 MHz x 64 bit). Reported intranode one-copy bandwidth peaks at
// 350.9 MB/s, about 66 % of the theoretical bus rate; the effective copy
// stream rate below accounts for the read+write bus crossings of a copy.
package mem

import "pushpull/internal/sim"

// Config describes a node's memory system.
type Config struct {
	// CPUClockHz is the processor clock; one NOP costs one cycle.
	CPUClockHz int64
	// BusBytesPerSec is the peak system bus bandwidth.
	BusBytesPerSec int64
	// CopyBytesPerSec is the effective streaming rate of a single memory
	// copy (read + write crossings included).
	CopyBytesPerSec int64
	// CopyStartup is the fixed cost of initiating a block copy (function
	// call, alignment setup, first cache line fill).
	CopyStartup sim.Duration
	// PIOBytesPerSec is the programmed-I/O rate for CPU stores into
	// uncached device memory (copying a pushed fragment into the NIC's
	// outgoing FIFO from user space).
	PIOBytesPerSec int64
	// CacheLineBytes is the cache line size (Pentium Pro: 32 bytes).
	CacheLineBytes int
	// L2Bytes is the unified L2 cache size; copies whose working set
	// exceeds it lose the cache-resident bonus.
	L2Bytes int
	// CacheBonus scales the copy rate up when source and destination both
	// fit in L2 (expressed as a multiplier, e.g. 1.25).
	CacheBonus float64
}

// PentiumPro200 is the paper's machine: 200 MHz Pentium Pro, 256 MB RAM,
// 533 MB/s bus, 8 KB L1 I/D caches, 512 KB unified L2.
func PentiumPro200() Config {
	return Config{
		CPUClockHz:      200_000_000,
		BusBytesPerSec:  533_000_000,
		CopyBytesPerSec: 440_000_000,
		CopyStartup:     300 * sim.Nanosecond,
		PIOBytesPerSec:  133_000_000,
		CacheLineBytes:  32,
		L2Bytes:         512 << 10,
		CacheBonus:      1.18,
	}
}

// CycleTime is the duration of one CPU cycle.
func (c Config) CycleTime() sim.Duration {
	return sim.Duration(int64(sim.Second) / c.CPUClockHz)
}

// Cycles converts a cycle count to a duration.
func (c Config) Cycles(n int64) sim.Duration {
	return sim.Duration(n * int64(sim.Second) / c.CPUClockHz)
}
