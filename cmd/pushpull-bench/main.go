// Command pushpull-bench regenerates the paper's tables and figures (and
// this repository's ablations) on the simulated testbed.
//
// Usage:
//
//	pushpull-bench [-iters N] [-workers N] [-csv] [experiment ...]
//	pushpull-bench -list
//
// With no experiment arguments, every experiment runs. Experiments are
// independent simulations, so they execute across a worker pool (one
// engine per goroutine, -workers, default GOMAXPROCS) and print in the
// requested order with identical numbers for any worker count. Each
// experiment prints one or more tables whose rows correspond to the
// paper's figure axes; EXPERIMENTS.md records the side-by-side
// paper-vs-measured readings.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pushpull/internal/bench"
	"pushpull/internal/stats"
)

func main() {
	iters := flag.Int("iters", 1000, "timed iterations per point (paper: 1000)")
	workers := flag.Int("workers", 0, "experiments run concurrently on this many workers (0 = GOMAXPROCS); never changes the numbers")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	}

	var exps []bench.Experiment
	for _, id := range ids {
		e, err := bench.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			fmt.Fprintln(os.Stderr, "run with -list to see available experiments")
			os.Exit(2)
		}
		exps = append(exps, e)
	}

	params := bench.Params{Iters: *iters}
	//pushpull:lint-allow walltime wall-clock total for the closing progress line; results and tables carry only virtual time
	start := time.Now()
	// Tables stream in input order as experiments complete, so a long
	// run shows progress and an interrupted one keeps what finished.
	bench.RunExperimentsStream(exps, params, *workers, func(i int, tables []*stats.Table) {
		for _, tab := range tables {
			if *csv {
				fmt.Print(tab.CSV())
			} else {
				fmt.Println(tab.Render())
			}
		}
		if !*csv {
			fmt.Printf("# paper: %s\n# (%s)\n\n", exps[i].Paper, exps[i].ID)
		}
	})
	if !*csv {
		fmt.Printf("# %d experiment(s), total wall time %.1fs\n", len(exps), time.Since(start).Seconds()) //pushpull:lint-allow walltime wall-clock duration for operator progress output only
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `pushpull-bench: regenerate the evaluation of
"Push-Pull Messaging" (Wong & Wang, ICPP 1999) on the simulated testbed.

usage: pushpull-bench [-iters N] [-csv] [experiment ...]

`)
	flag.PrintDefaults()
	fmt.Fprintf(os.Stderr, "\nexperiments:\n")
	for _, e := range bench.All() {
		fmt.Fprintf(os.Stderr, "  %-20s %s\n", e.ID, e.Title)
	}
}
