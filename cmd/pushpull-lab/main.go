// Command pushpull-lab orchestrates studies — named compositions of
// scenarios, sweeps and bench experiments — and maintains the versioned
// result store that turns the repo's perf trajectory into checked,
// diffable artifacts.
//
// Usage:
//
//	pushpull-lab studies
//	pushpull-lab study <name>
//	pushpull-lab run [-workers N] [-store DIR] [-out FILE] <study|study.json>
//	pushpull-lab list [-store DIR]
//	pushpull-lab show [-body] <artifact.json>
//	pushpull-lab compare [-tol metric=frac ...] <baseline.json> <candidate.json>
//	pushpull-lab gobench [-file BENCH_sim.json] [-pdes-file BENCH_pdes.json] [-comment C]
//
// "run" executes every job of the study on a worker pool and persists a
// schema-versioned artifact. Everything in the artifact below the
// capture stamp (time, commit, workers) is simulation-derived, so the
// body is byte-identical for any -workers value — `make lab-check`
// pins that, and "show -body" prints exactly the bytes it diffs.
//
// "compare" diffs a candidate artifact against a baseline: job digest
// changes are hard failures (exit 4), metric deltas beyond tolerance
// are regressions (exit 3), and a config-hash mismatch refuses the
// comparison outright (exit 1) — different configurations are
// different experiments. -tol takes metric=frac pairs ("default=0.1"
// rebinds the default 5%; counters like receives/bytes/points are
// exact unless overridden).
//
// "gobench" reruns the tracked internal/sim microbenchmarks via
// testing.Benchmark and appends one entry to the BENCH_sim.json
// append-only series — the capture path that replaces hand-editing the
// perf history. It then times the conservative-PDES speedup probe
// (sequential vs 1/2/4 workers on the permutation scenario) and appends
// that to BENCH_pdes.json; meaningful speedups need a multi-core box
// (gomaxprocs is recorded per entry). Wall-clock numbers never enter
// study artifacts.
//
// Exit codes: 0 success, 1 operational error (including refused
// comparisons), 2 usage, 3 metric regression, 4 job digest change.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pushpull/internal/lab"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "studies":
		for _, name := range lab.StudyNames() {
			st, _ := lab.StudyByName(name)
			fmt.Printf("%-12s %2d jobs  %s\n", st.Name, len(st.Jobs), st.Description)
		}
	case "study":
		if len(os.Args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: pushpull-lab study <name>")
			os.Exit(2)
		}
		st, err := lab.StudyByName(os.Args[2])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", st.JSON())
	case "run":
		runCmd(os.Args[2:])
	case "list":
		listCmd(os.Args[2:])
	case "show":
		showCmd(os.Args[2:])
	case "compare":
		compareCmd(os.Args[2:])
	case "gobench":
		gobenchCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pushpull-lab: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); never changes the artifact body")
	store := fs.String("store", lab.DefaultStoreDir, "artifact store directory")
	out := fs.String("out", "", "write the artifact to this file instead of the store")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pushpull-lab run [flags] <study|study.json>")
		os.Exit(2)
	}
	st, err := resolveStudy(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	//pushpull:lint-allow walltime wall-clock study duration for operator progress output; never enters an artifact digest
	start := time.Now()
	a, err := lab.RunStudy(st, w)
	if err != nil {
		fatal(err)
	}
	//pushpull:lint-allow walltime capture stamp recording when the artifact was produced; excluded from the artifact digest
	a.CapturedAt = time.Now().UTC().Format(time.RFC3339)
	a.Commit = gitCommit()
	a.Workers = w

	var failed int
	for _, jr := range a.Jobs {
		failed += jr.Failed
		fmt.Fprintf(os.Stderr, "  %-20s %-8s %3d unit(s)%s  digest %s\n",
			jr.Job, jr.Kind, jr.Units,
			map[bool]string{true: fmt.Sprintf(" (%d FAILED)", jr.Failed), false: ""}[jr.Failed > 0],
			jr.Digest[:12])
	}
	fmt.Fprintf(os.Stderr, "%s: %d job(s) in %.2fs on %d worker(s), artifact digest %s\n",
		a.Study, len(a.Jobs), time.Since(start).Seconds(), w, a.Digest[:12]) //pushpull:lint-allow walltime wall-clock duration for operator progress output only

	path := *out
	if path != "" {
		if err := os.WriteFile(path, a.JSON(), 0o644); err != nil {
			fatal(err)
		}
	} else {
		path, err = lab.Store{Dir: *store}.Put(a)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Println(path)
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "pushpull-lab: %d unit(s) failed inside the study (see the artifact's runs/errors)\n", failed)
		os.Exit(1)
	}
}

func listCmd(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	store := fs.String("store", lab.DefaultStoreDir, "artifact store directory")
	fs.Parse(args)
	entries, err := lab.Store{Dir: *store}.List()
	if err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fmt.Fprintf(os.Stderr, "pushpull-lab: store %q holds no artifacts (run a study first)\n", *store)
		return
	}
	for _, e := range entries {
		a := e.Artifact
		fmt.Printf("%-20s %-12s %2d job(s)  digest %s  commit %-12s %s\n",
			a.CapturedAt, a.Study, len(a.Jobs), a.Digest[:12], a.Commit, e.Path)
	}
}

func showCmd(args []string) {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	body := fs.Bool("body", false, "print only the deterministic body (capture stamp stripped) — the bytes make lab-check diffs")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pushpull-lab show [-body] <artifact.json>")
		os.Exit(2)
	}
	a, err := lab.LoadArtifact(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *body {
		os.Stdout.Write(a.Body())
		return
	}
	os.Stdout.Write(a.JSON())
}

func compareCmd(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	tol := lab.DefaultTolerances()
	fs.Func("tol", "metric=frac tolerance override (repeatable; \"default=F\" rebinds the default)", func(v string) error {
		name, frac, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("want metric=frac, got %q", v)
		}
		f, err := strconv.ParseFloat(frac, 64)
		if err != nil || f < 0 {
			return fmt.Errorf("bad tolerance %q", frac)
		}
		if name == "default" {
			tol.Default = f
		} else {
			tol.PerMetric[name] = f
		}
		return nil
	})
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: pushpull-lab compare [-tol metric=frac] <baseline.json> <candidate.json>")
		os.Exit(2)
	}
	a, err := lab.LoadArtifact(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := lab.LoadArtifact(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	c, err := lab.Compare(a, b, tol)
	if err != nil {
		fatal(err)
	}
	fmt.Print(c.Render())
	os.Exit(c.ExitCode())
}

func gobenchCmd(args []string) {
	fs := flag.NewFlagSet("gobench", flag.ExitOnError)
	file := fs.String("file", "BENCH_sim.json", "series file to append the capture to")
	pdesFile := fs.String("pdes-file", "BENCH_pdes.json", "series file for the PDES speedup capture (empty skips it)")
	comment := fs.String("comment", "", "one-line context for this capture (what changed)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: pushpull-lab gobench [-file F] [-pdes-file F] [-comment C]")
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "pushpull-lab: running the tracked internal/sim microbenchmarks (wall clock — not part of any artifact)...")
	entry := lab.BenchSeriesEntry{
		//pushpull:lint-allow walltime capture stamp recording when the bench series entry was taken; not digested
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		Commit:     gitCommit(),
		Comment:    *comment,
		Benchmarks: lab.CaptureGoBench(),
	}
	for _, m := range entry.Benchmarks {
		fmt.Fprintf(os.Stderr, "  %-32s %12.2f ns/op %6d B/op %4d allocs/op\n",
			m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	if err := lab.AppendBenchSeries(*file, entry); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pushpull-lab: appended capture to %s\n", *file)
	if *pdesFile == "" {
		return
	}
	fmt.Fprintln(os.Stderr, "pushpull-lab: timing the PDES speedup probe (sequential vs 1/2/4 workers)...")
	pe, err := lab.CapturePDESBench()
	if err != nil {
		fatal(err)
	}
	pe.CapturedAt = entry.CapturedAt
	pe.Commit = entry.Commit
	pe.Comment = *comment
	for _, r := range pe.Runs {
		fmt.Fprintf(os.Stderr, "  %s workers=%d %10.2f ms\n", pe.Scenario, r.Workers, r.WallMS)
	}
	fmt.Fprintf(os.Stderr, "  speedup w4/w1 %.2fx on %d core(s); supersteps %d, routed %d, lookahead util %.3f\n",
		pe.SpeedupW4OverW1, pe.GoMaxProcs, pe.Supersteps, pe.RoutedEvents, pe.LookaheadUtilization)
	if err := lab.AppendPDESBenchSeries(*pdesFile, pe); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pushpull-lab: appended capture to %s\n", *pdesFile)
}

// resolveStudy maps a study argument to a Study: builtin name first,
// then a path to a JSON study file.
func resolveStudy(arg string) (lab.Study, error) {
	if st, err := lab.StudyByName(arg); err == nil {
		return st, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return lab.Study{}, fmt.Errorf("%q is neither a builtin study (see \"pushpull-lab studies\") nor a readable study file: %w", arg, err)
	}
	return lab.ParseStudy(data)
}

// gitCommit best-effort resolves the working tree's commit for the
// capture stamp; artifacts stay valid without it.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pushpull-lab:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprint(os.Stderr, `pushpull-lab: study orchestration and the versioned result store.

usage:
  pushpull-lab studies                list builtin studies
  pushpull-lab study <name>           print a builtin study's JSON (edit + feed back to run)
  pushpull-lab run [flags] <study|study.json>
                                      run every job of a study, persist a versioned artifact
  pushpull-lab list [-store DIR]      list stored artifacts, newest first
  pushpull-lab show [-body] <artifact.json>
                                      print an artifact (-body: deterministic bytes only)
  pushpull-lab compare [flags] <baseline.json> <candidate.json>
                                      diff two artifacts; gate on digests and metric tolerances
  pushpull-lab gobench [flags]        rerun the sim microbenchmarks, append to BENCH_sim.json

run flags:
  -workers N    pool size (0 = GOMAXPROCS); the artifact body is byte-identical for any N
  -store DIR    artifact store directory (default labstore)
  -out FILE     write the artifact to FILE instead of the store

compare flags:
  -tol m=frac   per-metric relative tolerance (repeatable); "default=F" rebinds the 5% default;
                counters (receives, bytes, points, failed) are exact unless overridden

exit codes: 0 success, 1 operational error (incl. refused comparison:
config-hash/schema/study mismatch), 2 usage, 3 metric delta beyond
tolerance, 4 job digest change
`)
}
