package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module so the exit-code contract can
// be exercised without committing a bad file to the repo.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module lintprobe\n\ngo 1.21\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestExitCodes pins the documented contract: 0 clean, 1 findings,
// 2 load/type error.
func TestExitCodes(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"ok.go": "package probe\n\nfunc Two() int { return 2 }\n",
		})
		code, stdout, stderr := runLint(t, "-dir", dir, "./...")
		if code != 0 {
			t.Fatalf("exit %d, want 0 (stdout %q, stderr %q)", code, stdout, stderr)
		}
		if stdout != "" {
			t.Errorf("clean run printed %q", stdout)
		}
	})
	t.Run("seeded violation", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"bad.go": "package probe\n\nimport \"time\"\n\nfunc Stamp() int64 { return time.Now().Unix() }\n",
		})
		code, stdout, _ := runLint(t, "-dir", dir, "./...")
		if code != 1 {
			t.Fatalf("exit %d, want 1 (stdout %q)", code, stdout)
		}
		if !strings.Contains(stdout, "bad.go:5:") || !strings.Contains(stdout, "walltime") {
			t.Errorf("diagnostic missing position or analyzer: %q", stdout)
		}
	})
	t.Run("type error", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"broken.go": "package probe\n\nfunc f() { undefined() }\n",
		})
		code, _, stderr := runLint(t, "-dir", dir, "./...")
		if code != 2 {
			t.Fatalf("exit %d, want 2", code)
		}
		if !strings.Contains(stderr, "undefined") {
			t.Errorf("stderr should carry the type error, got %q", stderr)
		}
	})
}

// TestJSONOutput pins the -json document shape and its stable ordering.
func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		// Two findings out of source order within one line-sorted file,
		// plus a second file sorting ahead of it.
		"b.go": "package probe\n\nimport \"time\"\n\nfunc B() { time.Sleep(time.Second); _ = time.Now() }\n",
		"a.go": "package probe\n\nimport \"math/rand\"\n\nfunc A() int { return rand.Int() }\n",
	})
	code, stdout, stderr := runLint(t, "-json", "-dir", dir, "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, stderr)
	}
	var report struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, stdout)
	}
	if len(report.Findings) != 3 {
		t.Fatalf("got %d findings, want 3: %s", len(report.Findings), stdout)
	}
	wantOrder := []string{"globalrand", "walltime", "walltime"}
	wantFiles := []string{"a.go", "b.go", "b.go"}
	for i, f := range report.Findings {
		if f.Analyzer != wantOrder[i] || f.File != wantFiles[i] {
			t.Errorf("finding %d: got %s in %s, want %s in %s", i, f.Analyzer, f.File, wantOrder[i], wantFiles[i])
		}
	}
	if a, b := report.Findings[1], report.Findings[2]; a.Line != b.Line || a.Col >= b.Col {
		t.Errorf("same-line findings not column-sorted: %+v then %+v", a, b)
	}
}
