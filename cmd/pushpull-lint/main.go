// Command pushpull-lint runs the repo's five determinism/tier/pooling
// analyzers (see internal/lint) over a package pattern, ./... by
// default.
//
// Exit codes: 0 clean, 1 findings, 2 load or type error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pushpull/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("pushpull-lint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	jsonOut := flags.Bool("json", false, "emit findings as a JSON document")
	dir := flags.String("dir", ".", "module root to analyze from")
	flags.Usage = func() {
		fmt.Fprintf(stderr, "usage: pushpull-lint [-json] [-dir root] [patterns]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nExit codes: 0 clean, 1 findings, 2 load/type error.\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings := lint.Run(prog, lint.Analyzers())
	if *jsonOut {
		if err := lint.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else if err := lint.WriteText(stdout, findings); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
