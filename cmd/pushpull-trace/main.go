// Command pushpull-trace prints the event timeline of a single Push-Pull
// messaging event on the simulated testbed — a teaching and debugging
// view of the protocol's phases (push, acknowledge/pull-request, pull,
// completion) with virtual timestamps. With -columns the two nodes print
// side by side; -summary appends per-event-kind counts, including the NIC
// and go-back-N layers.
//
// Usage:
//
//	pushpull-trace [-size N] [-mode push-pull|push-zero|push-all|three-phase]
//	               [-intra] [-late MS] [-pushedbuf N] [-columns] [-summary]
package main

import (
	"flag"
	"fmt"
	"os"

	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/trace"
)

func main() {
	size := flag.Int("size", 1400, "message size in bytes")
	mode := flag.String("mode", "push-pull", "messaging mode: push-pull, push-zero, push-all, three-phase")
	intra := flag.Bool("intra", false, "intranode transfer (default internode)")
	lateMS := flag.Int("late", 0, "delay the receive operation by this many virtual ms")
	pushedBuf := flag.Int("pushedbuf", 4096, "pushed buffer bytes")
	columns := flag.Bool("columns", false, "render one column per node")
	summary := flag.Bool("summary", false, "append per-kind event counts")
	breakdown := flag.Bool("breakdown", false, "append the critical-path phase breakdown (the paper's Figure 2, measured)")
	flag.Parse()

	opts := pushpull.DefaultOptions()
	opts.PushedBufBytes = *pushedBuf
	switch *mode {
	case "push-pull":
		opts.Mode = pushpull.PushPull
	case "push-zero":
		opts.Mode = pushpull.PushZero
	case "push-all":
		opts.Mode = pushpull.PushAll
	case "three-phase":
		opts.Mode = pushpull.ThreePhase
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	cfg := cluster.DefaultConfig()
	cfg.Opts = opts
	rNode := 1
	if *intra {
		cfg.Nodes = 1
		cfg.ProcsPerNode = 2
		rNode = 0
	}
	c := cluster.New(cfg)
	rec := trace.NewRecorder(0)
	c.SetRecorder(rec)

	sender := c.Endpoint(0, 0)
	var receiver *pushpull.Endpoint
	if *intra {
		receiver = c.Endpoint(0, 1)
	} else {
		receiver = c.Endpoint(1, 0)
	}

	msg := make([]byte, *size)
	for i := range msg {
		msg[i] = byte(i)
	}
	src := sender.Alloc(*size)
	dst := receiver.Alloc(*size)

	fmt.Printf("# %s, %d bytes, %s, pushed buffer %d B, receive delayed %d ms\n",
		*mode, *size, route(*intra), *pushedBuf, *lateMS)

	c.Nodes[0].Spawn("sender", sender.CPU, func(t *smp.Thread) {
		if err := sender.Send(t, receiver.ID, src, msg); err != nil {
			fmt.Fprintln(os.Stderr, "send:", err)
			os.Exit(1)
		}
		rec.Recordf(t.Now(), 0, "api", "send() returned")
	})
	c.Nodes[rNode].SpawnAt(sim.Duration(*lateMS)*sim.Millisecond, "receiver", receiver.CPU, func(t *smp.Thread) {
		rec.Recordf(t.Now(), rNode, "api", "recv() posted")
		got, err := receiver.Recv(t, sender.ID, dst, *size)
		if err != nil {
			fmt.Fprintln(os.Stderr, "recv:", err)
			os.Exit(1)
		}
		rec.Recordf(t.Now(), rNode, "api", "recv() returned %d bytes", len(got))
	})
	end := c.Run()

	var err error
	if *columns {
		err = rec.RenderColumns(os.Stdout, 0)
	} else {
		err = rec.Render(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "render:", err)
		os.Exit(1)
	}
	fmt.Printf("# simulation drained at %v, %d events\n", end, rec.Total())
	if *summary {
		fmt.Print(rec.Summary())
	}
	if *breakdown {
		fmt.Print(trace.RenderBreakdown(trace.Breakdown(rec.Events())))
	}
}

func route(intra bool) string {
	if intra {
		return "intranode"
	}
	return "internode (Fast Ethernet)"
}
