// Command pushpull-scen lists, inspects and runs declarative scenarios
// on the simulated testbed, emitting machine-readable JSON results.
//
// Usage:
//
//	pushpull-scen list
//	pushpull-scen patterns
//	pushpull-scen spec <scenario>
//	pushpull-scen run [-seed N] [-messages N] [-size N] [-samples] [-out FILE] <scenario|spec.json> ...
//
// "run" accepts builtin scenario names (see "list") and paths to JSON
// spec files (see "spec" for the schema; a file only needs the fields
// that differ from the paper's testbed defaults). Results go to stdout
// as a JSON array, or to -out. Rerunning with the same seed reproduces
// byte-identical results — the digest field makes that checkable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pushpull/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, s := range scenario.Builtin() {
			fmt.Printf("%-24s %s\n", s.Name, s.Description)
		}
	case "patterns":
		for _, name := range scenario.PatternNames() {
			fmt.Printf("%-12s %s\n", name, scenario.PatternDoc(name))
		}
	case "spec":
		if len(os.Args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: pushpull-scen spec <scenario>")
			os.Exit(2)
		}
		spec, err := scenario.ByName(os.Args[2])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", spec.JSON())
	case "run":
		runCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pushpull-scen: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed := fs.Uint64("seed", 0, "override the scenario seed (0 keeps the spec's)")
	messages := fs.Int("messages", 0, "override the per-sender message count (0 keeps the spec's)")
	size := fs.Int("size", 0, "override the message size in bytes (0 keeps the spec's)")
	samples := fs.Bool("samples", false, "include raw per-message latency samples in the output")
	out := fs.String("out", "", "write results to this file instead of stdout")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pushpull-scen run [flags] <scenario|spec.json> ...")
		os.Exit(2)
	}

	var results []string
	for _, arg := range fs.Args() {
		spec, err := resolve(arg)
		if err != nil {
			fatal(err)
		}
		if *seed != 0 {
			spec.Seed = *seed
		}
		if *messages > 0 {
			spec.Traffic.Messages = *messages
		}
		if *size > 0 {
			spec.Traffic.Size = *size
		}
		var opts []scenario.RunOption
		if *samples {
			opts = append(opts, scenario.KeepSamples())
		}
		res, err := scenario.Run(spec, opts...)
		if err != nil {
			fatal(err)
		}
		results = append(results, string(res.JSON()))
		fmt.Fprintf(os.Stderr, "%s: %d receives, %d payload bytes, %.1f virtual µs, trimmed-mean latency %.2f µs, digest %s\n",
			spec.Name, res.Receives, res.Bytes, res.VirtualUS, res.Latency.TrimmedMean, res.Digest[:12])
	}

	blob := "[\n" + strings.Join(results, ",\n") + "\n]\n"
	if *out != "" {
		if err := os.WriteFile(*out, []byte(blob), 0o644); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(blob)
}

// resolve maps a run argument to a spec: a builtin name, or a path to a
// JSON spec file.
func resolve(arg string) (scenario.Spec, error) {
	if spec, err := scenario.ByName(arg); err == nil {
		return spec, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return scenario.Spec{}, fmt.Errorf("%q is neither a builtin scenario (see \"pushpull-scen list\") nor a readable spec file: %w", arg, err)
	}
	return scenario.ParseSpec(data)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pushpull-scen:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprint(os.Stderr, `pushpull-scen: declarative scenarios for the Push-Pull Messaging testbed.

usage:
  pushpull-scen list                  list builtin scenarios
  pushpull-scen patterns              list traffic patterns a spec can name
  pushpull-scen spec <scenario>       print a scenario's JSON spec (edit + feed back to run)
  pushpull-scen run [flags] <scenario|spec.json> ...
                                      run scenarios, JSON results to stdout

run flags:
  -seed N       override the seed (same seed => byte-identical result)
  -messages N   override per-sender message count
  -size N       override message size
  -samples      include raw latency samples in the JSON
  -out FILE     write the JSON array to FILE
`)
}
