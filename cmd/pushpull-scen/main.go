// Command pushpull-scen lists, inspects and runs declarative scenarios
// on the simulated testbed, emitting machine-readable JSON results.
//
// Usage:
//
//	pushpull-scen list
//	pushpull-scen patterns
//	pushpull-scen spec <scenario>
//	pushpull-scen run [-seed N] [-messages N] [-size N] [-algorithm A] [-faults FILE] [-samples] [-out FILE] <scenario|spec.json> ...
//	pushpull-scen sweeps
//	pushpull-scen sweep [-workers N] [-digest] [-print] [-out FILE] <sweep|sweep.json>
//
// "run" accepts builtin scenario names (see "list") and paths to JSON
// spec files (see "spec" for the schema; a file only needs the fields
// that differ from the paper's testbed defaults). Results go to stdout
// as a JSON array, or to -out. Rerunning with the same seed reproduces
// byte-identical results — the digest field makes that checkable.
//
// "sweep" expands a base spec over a cartesian parameter grid and runs
// the points across a worker pool of independent engines (one engine
// per goroutine). Results are emitted in deterministic grid order with
// an aggregate digest: the output is byte-identical whatever -workers.
//
// Exit codes: 0 on success, 1 on operational errors, 2 on usage errors,
// 3 when any run or sweep point exhausted its virtual-time budget — the
// signature of a protocol deadlock or retransmission livelock — and 4
// when the transport diagnosed an unreachable peer (the retransmission
// budget fired; see -faults and the protocol's maxRetries), so CI and
// sweep drivers tell stalls from diagnosed dead links mechanically.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"pushpull/internal/fault"
	"pushpull/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		// Sorted by name, not definition order: the listing is piped into
		// scripts (see the Makefile's scenarios target), so it must be
		// deterministic and greppable.
		specs := scenario.Builtin()
		sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
		for _, s := range specs {
			fmt.Printf("%-24s %s\n", s.Name, s.Description)
		}
	case "patterns":
		for _, name := range scenario.PatternNames() {
			fmt.Printf("%-12s %s\n", name, scenario.PatternDoc(name))
		}
	case "spec":
		if len(os.Args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: pushpull-scen spec <scenario>")
			os.Exit(2)
		}
		spec, err := scenario.ByName(os.Args[2])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", spec.JSON())
	case "run":
		runCmd(os.Args[2:])
	case "sweeps":
		sweeps := scenario.BuiltinSweeps()
		sort.Slice(sweeps, func(i, j int) bool { return sweeps[i].Name < sweeps[j].Name })
		for _, sw := range sweeps {
			fmt.Printf("%-12s %4d points  %s\n", sw.Name, sw.Grid.Points(), sw.Description)
		}
	case "sweep":
		sweepCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pushpull-scen: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed := fs.Uint64("seed", 0, "override the scenario seed (0 keeps the spec's)")
	messages := fs.Int("messages", 0, "override the per-sender message count (0 keeps the spec's)")
	size := fs.Int("size", 0, "override the message size in bytes (0 keeps the spec's)")
	algorithm := fs.String("algorithm", "", "override the collective algorithm (collective patterns only; empty keeps the spec's)")
	faults := fs.String("faults", "", "overlay a JSON fault plan file onto every scenario (replaces the spec's own)")
	par := fs.Int("par", 0, "parallel PDES workers inside each run (0 = sequential engine); the digest is identical for any count")
	samples := fs.Bool("samples", false, "include raw per-message latency samples in the output")
	out := fs.String("out", "", "write results to this file instead of stdout")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pushpull-scen run [flags] <scenario|spec.json> ...")
		os.Exit(2)
	}
	var plan *fault.Plan
	if *faults != "" {
		data, err := os.ReadFile(*faults)
		if err != nil {
			fatal(err)
		}
		plan, err = fault.ParsePlan(data)
		if err != nil {
			fatal(err)
		}
	}

	var results []string
	for _, arg := range fs.Args() {
		spec, err := resolve(arg)
		if err != nil {
			fatal(err)
		}
		if *seed != 0 {
			spec.Seed = *seed
		}
		if *messages > 0 {
			spec.Traffic.Messages = *messages
		}
		if *size > 0 {
			spec.Traffic.Size = *size
		}
		if *algorithm != "" {
			spec.Traffic.Algorithm = *algorithm
		}
		if plan != nil {
			spec.Faults = plan
		}
		if *par > 0 {
			spec.ParallelWorkers = *par
		}
		var opts []scenario.RunOption
		if *samples {
			opts = append(opts, scenario.KeepSamples())
		}
		res, err := scenario.Run(spec, opts...)
		if err != nil {
			if scenario.IsPeerUnreachable(err) {
				fmt.Fprintln(os.Stderr, "pushpull-scen:", err)
				os.Exit(exitUnreachable)
			}
			if scenario.IsBudgetError(err) {
				fmt.Fprintln(os.Stderr, "pushpull-scen:", err)
				os.Exit(exitBudget)
			}
			fatal(err)
		}
		results = append(results, string(res.JSON()))
		fmt.Fprintf(os.Stderr, "%s: %d receives, %d payload bytes, %.1f virtual µs, trimmed-mean latency %.2f µs, digest %s\n",
			spec.Name, res.Receives, res.Bytes, res.VirtualUS, res.Latency.TrimmedMean, res.Digest[:12])
	}

	blob := "[\n" + strings.Join(results, ",\n") + "\n]\n"
	if *out != "" {
		if err := os.WriteFile(*out, []byte(blob), 0o644); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(blob)
}

func sweepCmd(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); never changes the results")
	digest := fs.Bool("digest", false, "print only the aggregate digest to stdout")
	printSpec := fs.Bool("print", false, "print the sweep's JSON spec instead of running it")
	samples := fs.Bool("samples", false, "include raw per-message latency samples in every point result")
	out := fs.String("out", "", "write the sweep result to this file instead of stdout")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pushpull-scen sweep [flags] <sweep|sweep.json>")
		os.Exit(2)
	}

	sw, err := resolveSweep(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *printSpec {
		fmt.Printf("%s\n", sw.JSON())
		return
	}
	var opts []scenario.RunOption
	if *samples {
		opts = append(opts, scenario.KeepSamples())
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	//pushpull:lint-allow walltime wall-clock sweep duration for the points/s progress line; sweep digests depend only on virtual time
	start := time.Now()
	res, err := scenario.RunSweep(sw, w, opts...)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start) //pushpull:lint-allow walltime wall-clock sweep duration for the points/s progress line; sweep digests depend only on virtual time
	fmt.Fprintf(os.Stderr, "%s: %d points (%d failed) on %d workers in %.2fs (%.1f points/s), digest %s\n",
		res.Sweep, res.Points, res.Failed, w, elapsed.Seconds(),
		float64(res.Points)/elapsed.Seconds(), res.Digest[:12])
	stalled := 0
	for i := range res.Results {
		if res.Results[i].BudgetExhausted {
			stalled++
		}
	}
	if stalled > 0 {
		fmt.Fprintf(os.Stderr, "pushpull-scen: %d point(s) exhausted their virtual-time budget (deadlock or retransmission livelock)\n", stalled)
	}

	if *out != "" {
		if err := os.WriteFile(*out, append(res.JSON(), '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if *digest {
		fmt.Println(res.Digest)
	} else if *out == "" {
		os.Stdout.Write(append(res.JSON(), '\n'))
	}
	if stalled > 0 {
		os.Exit(exitBudget)
	}
}

// resolveSweep maps a sweep argument to a spec: a builtin name, or a
// path to a JSON sweep file.
func resolveSweep(arg string) (scenario.Sweep, error) {
	if sw, err := scenario.SweepByName(arg); err == nil {
		return sw, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return scenario.Sweep{}, fmt.Errorf("%q is neither a builtin sweep (see \"pushpull-scen sweeps\") nor a readable sweep file: %w", arg, err)
	}
	return scenario.ParseSweep(data)
}

// resolve maps a run argument to a spec: a builtin name, or a path to a
// JSON spec file.
func resolve(arg string) (scenario.Spec, error) {
	if spec, err := scenario.ByName(arg); err == nil {
		return spec, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return scenario.Spec{}, fmt.Errorf("%q is neither a builtin scenario (see \"pushpull-scen list\") nor a readable spec file: %w", arg, err)
	}
	return scenario.ParseSpec(data)
}

// exitBudget is the distinct exit code for virtual-time-budget
// exhaustion: a stalled protocol, not an operational error.
// exitUnreachable is its structured counterpart: the transport
// diagnosed a dead peer and failed fast instead of stalling, so drivers
// can distinguish "the protocol hung" from "the network was declared
// broken". Checked first — an unreachable-peer diagnosis is more
// specific than any budget it also happens to blow.
const (
	exitBudget      = 3
	exitUnreachable = 4
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pushpull-scen:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprint(os.Stderr, `pushpull-scen: declarative scenarios for the Push-Pull Messaging testbed.

usage:
  pushpull-scen list                  list builtin scenarios
  pushpull-scen patterns              list traffic patterns a spec can name
  pushpull-scen spec <scenario>       print a scenario's JSON spec (edit + feed back to run)
  pushpull-scen run [flags] <scenario|spec.json> ...
                                      run scenarios, JSON results to stdout
  pushpull-scen sweeps                list builtin parameter sweeps
  pushpull-scen sweep [flags] <sweep|sweep.json>
                                      expand a base spec over a parameter grid and
                                      run every point on a worker pool

run flags:
  -seed N       override the seed (same seed => byte-identical result)
  -messages N   override per-sender message count
  -size N       override message size
  -algorithm A  override the collective algorithm (collective patterns only)
  -faults FILE  overlay a JSON fault plan (link/node fault schedule) on every run
  -par N        conservative-PDES workers inside each run (0 = sequential
                engine); any N produces a byte-identical digest — make
                pdes-check pins 1 vs 4 on every builtin
  -samples      include raw latency samples in the JSON
  -out FILE     write the JSON array to FILE

exit codes: 1 operational error, 2 usage, 3 virtual-time budget
exhausted (deadlock/livelock), 4 peer declared unreachable
(retransmission budget exhausted toward a dead link)

sweep flags:
  -workers N    pool size (0 = GOMAXPROCS); results are byte-identical for any N
  -digest       print only the aggregate digest (CI determinism checks)
  -print        print the sweep's JSON spec instead of running it
  -samples      keep raw latency samples in every point result
  -out FILE     write the sweep result JSON to FILE
`)
}
