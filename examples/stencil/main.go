// Stencil runs the kind of parallel program the paper's introduction
// motivates COMPs with: an iterative 1-D stencil (Jacobi-style) sweep
// whose slab boundaries are exchanged between neighbouring nodes every
// iteration — a classic compute-then-communicate loop where sender and
// receiver are never perfectly synchronized.
//
// Four quad-CPU nodes hang off a Fast Ethernet switch. Each iteration
// every rank computes on its slab, then exchanges halo rows with both
// neighbours through the coll rank API (point-to-point calls with the
// two directions tagged so the receives can never cross-match), and
// every tenth iteration the residual check runs as an allreduce. The
// program reports the total virtual runtime under the three messaging
// mechanisms: Push-Pull's steadiness under timing skew is exactly the
// paper's closing claim ("Push-Pull Messaging could flexibly adapt to
// the cluster environment with different computation load").
//
// Run with: go run ./examples/stencil
package main

import (
	"flag"
	"fmt"
	"log"

	"pushpull/coll"
	"pushpull/comm"
	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
)

const (
	numNodes  = 4
	haloBytes = 8192 // two pages of boundary data per neighbour
	// computeCycles per iteration; slightly unbalanced across ranks so
	// receives are genuinely early on some nodes and late on others.
	baseCompute = 300_000
	skewCompute = 60_000
	// Halo direction tags: a rank's "downward" halo (toward rank-1) must
	// never match a receive expecting the "upward" one.
	tagUp   = 1
	tagDown = 2
)

func run(mode pushpull.Mode, iterations int) sim.Time {
	opts := pushpull.DefaultOptions()
	opts.Mode = mode
	opts.PushedBufBytes = 4096 // the paper's Fig. 6 budget
	cfg := cluster.DefaultConfig()
	cfg.Nodes = numNodes
	cfg.ProcsPerNode = 1
	cfg.Opts = opts
	cfg.UseSwitch = true
	c := cluster.New(cfg)
	w := coll.NewWorld(c)

	halo := make([]byte, haloBytes)
	residual := coll.FromInt64s([]int64{1})
	w.Launch(func(r *coll.Rank) {
		rank := r.ID()
		left, right := rank-1, rank+1
		for it := 0; it < iterations; it++ {
			// Compute phase: rank-dependent load imbalance.
			r.Compute(int64(baseCompute + rank*skewCompute))
			// Halo exchange: eager sends, then receives, directions
			// kept apart by tag.
			if left >= 0 {
				r.Send(left, halo, comm.WithTag(tagDown))
			}
			if right < numNodes {
				r.Send(right, halo, comm.WithTag(tagUp))
			}
			if left >= 0 {
				r.Recv(left, haloBytes, comm.WithTag(tagUp))
			}
			if right < numNodes {
				r.Recv(right, haloBytes, comm.WithTag(tagDown))
			}
			// Convergence check: a tiny max-allreduce every 10 sweeps.
			if it%10 == 9 {
				r.AllReduce(residual, coll.MaxInt64)
			}
		}
	})
	end, err := c.RunWithin(sim.Duration(120 * sim.Second))
	if err != nil {
		log.Fatal(err)
	}
	return end
}

func main() {
	short := flag.Bool("short", false, "shrink the run for smoke testing")
	flag.Parse()
	iterations := 20
	if *short {
		iterations = 5
	}

	fmt.Printf("1-D stencil, %d nodes, %d iterations, %d B halos, skewed compute\n\n",
		numNodes, iterations, haloBytes)
	fmt.Printf("%-12s %16s %18s\n", "mechanism", "total runtime", "per iteration")
	for _, mode := range []pushpull.Mode{pushpull.PushZero, pushpull.PushPull, pushpull.PushAll} {
		total := run(mode, iterations)
		per := sim.Duration(total) / sim.Duration(iterations)
		fmt.Printf("%-12s %16v %18v\n", mode, total, per)
	}
	fmt.Println("\nWith 8 KB halos and the paper's 4 KB pushed buffers, Push-All's eager")
	fmt.Println("fragments overflow whenever a neighbour is still computing, and only")
	fmt.Println("go-back-N timeouts recover them — now confined to the offending")
	fmt.Println("channel's eager lane. Push-Pull pushes one fragment per message —")
	fmt.Println("within budget — and pulls the rest when the receive posts, which is")
	fmt.Println("the paper's robustness argument for real parallel programs.")
}
