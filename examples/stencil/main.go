// Stencil runs the kind of parallel program the paper's introduction
// motivates COMPs with: an iterative 1-D stencil (Jacobi-style) sweep
// whose slab boundaries are exchanged between neighbouring nodes every
// iteration — a classic compute-then-communicate loop where sender and
// receiver are never perfectly synchronized.
//
// Four quad-CPU nodes hang off a Fast Ethernet switch. Each iteration
// every node computes on its slab, then exchanges halo rows with both
// neighbours. The program reports the total virtual runtime under the
// three messaging mechanisms: Push-Pull's steadiness under timing skew is
// exactly the paper's closing claim ("Push-Pull Messaging could flexibly
// adapt to the cluster environment with different computation load").
//
// Run with: go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

const (
	numNodes   = 4
	iterations = 20
	haloBytes  = 8192 // two pages of boundary data per neighbour
	// computeCycles per iteration; slightly unbalanced across ranks so
	// receives are genuinely early on some nodes and late on others.
	baseCompute = 300_000
	skewCompute = 60_000
)

func run(mode pushpull.Mode) sim.Time {
	opts := pushpull.DefaultOptions()
	opts.Mode = mode
	opts.PushedBufBytes = 4096 // the paper's Fig. 6 budget
	cfg := cluster.DefaultConfig()
	cfg.Nodes = numNodes
	cfg.ProcsPerNode = 1
	cfg.Opts = opts
	cfg.UseSwitch = true
	c := cluster.New(cfg)

	halo := make([]byte, haloBytes)
	for rank := 0; rank < numNodes; rank++ {
		rank := rank
		self := c.Endpoint(rank, 0)
		left, right := rank-1, rank+1
		sendL, sendR := self.Alloc(haloBytes), self.Alloc(haloBytes)
		recvL, recvR := self.Alloc(haloBytes), self.Alloc(haloBytes)
		c.Spawn(rank, 0, fmt.Sprintf("rank%d", rank), func(t *smp.Thread) {
			for it := 0; it < iterations; it++ {
				// Compute phase: rank-dependent load imbalance.
				t.Compute(int64(baseCompute + rank*skewCompute))
				// Halo exchange: eager sends, then receives.
				if left >= 0 {
					if err := self.Send(t, c.Endpoint(left, 0).ID, sendL, halo); err != nil {
						log.Fatal(err)
					}
				}
				if right < numNodes {
					if err := self.Send(t, c.Endpoint(right, 0).ID, sendR, halo); err != nil {
						log.Fatal(err)
					}
				}
				if left >= 0 {
					if _, err := self.Recv(t, c.Endpoint(left, 0).ID, recvL, haloBytes); err != nil {
						log.Fatal(err)
					}
				}
				if right < numNodes {
					if _, err := self.Recv(t, c.Endpoint(right, 0).ID, recvR, haloBytes); err != nil {
						log.Fatal(err)
					}
				}
			}
		})
	}
	return c.Run()
}

func main() {
	fmt.Printf("1-D stencil, %d nodes, %d iterations, %d B halos, skewed compute\n\n",
		numNodes, iterations, haloBytes)
	fmt.Printf("%-12s %16s %18s\n", "mechanism", "total runtime", "per iteration")
	for _, mode := range []pushpull.Mode{pushpull.PushZero, pushpull.PushPull, pushpull.PushAll} {
		total := run(mode)
		per := sim.Duration(total) / iterations
		fmt.Printf("%-12s %16v %18v\n", mode, total, per)
	}
	fmt.Println("\nWith 8 KB halos and the paper's 4 KB pushed buffers, Push-All's eager")
	fmt.Println("fragments overflow whenever a neighbour is still computing, and only")
	fmt.Println("go-back-N timeouts recover them. Push-Pull pushes one fragment per")
	fmt.Println("message — within budget — and pulls the rest when the receive posts,")
	fmt.Println("which is the paper's robustness argument for real parallel programs.")
}
