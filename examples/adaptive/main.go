// Adaptive demonstrates dynamic Bytes-To-Push — the paper's §3 remark
// that "applications can dynamically change the size of the pushed
// buffer to adapt to the runtime environment" — at both levels the comm
// API exposes it: the AIMD controller (internal/adapt) choosing BTP from
// pull-request feedback, and the per-message comm.WithBTP override an
// application can set by hand.
//
// A sender streams messages to a receiver whose behaviour shifts phase
// by phase: first it is early (parked in Recv when every push arrives),
// then late (posting its receive ~300 µs after the push), then early
// again. The program prints the wire bytes wasted on discarded pushes
// under the static default, the AIMD controller, and a manual
// WithBTP(0) policy applied during the late phase only.
//
// Run with: go run ./examples/adaptive
package main

import (
	"flag"
	"fmt"
	"log"

	"pushpull/comm"
	"pushpull/internal/adapt"
	"pushpull/internal/cluster"
	"pushpull/internal/sim"
)

const (
	msgSize   = 3000
	pushedBuf = 2048 // one ring slot: a late multi-fragment push overflows
)

// phases alternate receiver behaviour: true = late.
var phases = []bool{false, true, false}

// policy selects the sender's BTP strategy per run.
type policy int

const (
	static policy = iota
	aimd
	manual // WithBTP(0) while the receiver is known to be late
)

func (p policy) String() string {
	switch p {
	case static:
		return "static 760"
	case aimd:
		return "adaptive AIMD"
	default:
		return "WithBTP(0) late"
	}
}

func run(p policy, msgsPerPhase int) (wasted uint64, trajectory []int) {
	cfg := cluster.DefaultConfig()
	cfg.Opts.PushedBufBytes = pushedBuf
	c := cluster.New(cfg)
	var ctl *adapt.Controller
	if p == aimd {
		ac := adapt.DefaultConfig()
		ac.Max = pushedBuf // never push past the receiver's buffer
		ctl = adapt.NewController(ac)
		c.Stacks[0].SetAdapter(ctl)
	}

	sender := comm.At(c, 0, 0)
	receiver := comm.At(c, 1, 0)
	ch := comm.ChannelID{From: sender.ID(), To: receiver.ID()}
	msg := make([]byte, msgSize)
	credit := []byte{1}

	phaseEndBTP := make([]int, len(phases))

	c.Spawn(0, 0, "sender", func(t *comm.Thread) {
		for ph, late := range phases {
			for i := 0; i < msgsPerPhase; i++ {
				if _, err := sender.Recv(t, receiver.ID(), 1); err != nil {
					panic(err)
				}
				var opts []comm.Option
				if p == manual && late {
					// The application knows this phase's receiver lags:
					// push nothing, let the pull fetch everything.
					opts = append(opts, comm.WithBTP(0))
				}
				if err := sender.Send(t, receiver.ID(), msg, opts...); err != nil {
					panic(err)
				}
			}
			if ctl != nil {
				phaseEndBTP[ph] = ctl.Current(ch)
			} else if p == manual && late {
				phaseEndBTP[ph] = 0
			} else {
				phaseEndBTP[ph] = cfg.Opts.BTP
			}
		}
	})
	c.Spawn(1, 0, "receiver", func(t *comm.Thread) {
		for _, lateHere := range phases {
			for i := 0; i < msgsPerPhase; i++ {
				if err := receiver.Send(t, sender.ID(), credit); err != nil {
					panic(err)
				}
				if lateHere {
					t.Compute(60_000) // post the receive ~300 µs after the push
				}
				if _, err := receiver.Recv(t, sender.ID(), msgSize); err != nil {
					panic(err)
				}
			}
		}
	})
	if _, err := c.RunWithin(sim.Duration(120 * sim.Second)); err != nil {
		log.Fatal(err)
	}
	return c.Stacks[1].DiscardedBytes(), phaseEndBTP
}

func main() {
	short := flag.Bool("short", false, "shrink the run for smoke testing")
	flag.Parse()
	msgsPerPhase := 60
	if *short {
		msgsPerPhase = 15
	}

	fmt.Printf("%d B messages, %d B pushed buffer, %d messages per phase\n",
		msgSize, pushedBuf, msgsPerPhase)
	fmt.Println("phases: early -> late -> early")
	fmt.Println()

	fmt.Printf("%-16s %-24s %s\n", "policy", "BTP at phase ends", "wire bytes wasted on discarded pushes")
	for _, p := range []policy{static, aimd, manual} {
		waste, btp := run(p, msgsPerPhase)
		fmt.Printf("%-16s %-24s %d\n", p, fmt.Sprint(btp), waste)
	}
	fmt.Println()
	fmt.Println("The AIMD controller grows the push while the receiver is early, halves")
	fmt.Println("it on every overflow once the receiver turns late, and recovers when")
	fmt.Println("the receiver turns early again; WithBTP(0) is the same adaptation done")
	fmt.Println("by hand when the application knows its own phase structure.")
}
