// Adaptive demonstrates the adaptive Bytes-To-Push controller — the
// paper's §3 remark that "applications can dynamically change the size
// of the pushed buffer to adapt to the runtime environment", made
// concrete as an AIMD policy fed by pull-request feedback.
//
// A sender streams messages to a receiver whose behaviour shifts phase
// by phase: first it is early (parked in Recv when every push arrives),
// then late (posting its receive ~300 µs after the push), then early
// again. The program prints the controller's per-phase BTP trajectory
// and the wire bytes wasted on discarded pushes, against the static
// default.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"

	"pushpull/internal/adapt"
	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/smp"
)

const (
	msgsPerPhase = 60
	msgSize      = 3000
	pushedBuf    = 2048 // one ring slot: a late multi-fragment push overflows
)

// phases alternate receiver behaviour: true = late.
var phases = []bool{false, true, false}

func run(adaptive bool) (wasted uint64, trajectory []int) {
	cfg := cluster.DefaultConfig()
	cfg.Opts.PushedBufBytes = pushedBuf
	c := cluster.New(cfg)
	var ctl *adapt.Controller
	if adaptive {
		ac := adapt.DefaultConfig()
		ac.Max = pushedBuf // never push past the receiver's buffer
		ctl = adapt.NewController(ac)
		c.Stacks[0].SetAdapter(ctl)
	}

	sender := c.Endpoint(0, 0)
	receiver := c.Endpoint(1, 0)
	ch := pushpull.ChannelID{From: sender.ID, To: receiver.ID}
	msg := make([]byte, msgSize)
	credit := []byte{1}
	src := sender.Alloc(msgSize)
	creditDst := sender.Alloc(1)
	dst := receiver.Alloc(msgSize)
	creditSrc := receiver.Alloc(1)

	phaseEndBTP := make([]int, len(phases))

	c.Nodes[0].Spawn("sender", sender.CPU, func(t *smp.Thread) {
		for p := range phases {
			for i := 0; i < msgsPerPhase; i++ {
				if _, err := sender.Recv(t, receiver.ID, creditDst, 1); err != nil {
					panic(err)
				}
				if err := sender.Send(t, receiver.ID, src, msg); err != nil {
					panic(err)
				}
			}
			if ctl != nil {
				phaseEndBTP[p] = ctl.Current(ch)
			} else {
				phaseEndBTP[p] = cfg.Opts.BTP
			}
		}
	})
	c.Nodes[1].Spawn("receiver", receiver.CPU, func(t *smp.Thread) {
		for _, lateHere := range phases {
			for i := 0; i < msgsPerPhase; i++ {
				if err := receiver.Send(t, sender.ID, creditSrc, credit); err != nil {
					panic(err)
				}
				if lateHere {
					t.Compute(60_000) // post the receive ~300 µs after the push
				}
				if _, err := receiver.Recv(t, sender.ID, dst, msgSize); err != nil {
					panic(err)
				}
			}
		}
	})
	c.Run()
	return c.Stacks[1].DiscardedBytes(), phaseEndBTP
}

func main() {
	fmt.Printf("%d B messages, %d B pushed buffer, %d messages per phase\n",
		msgSize, pushedBuf, msgsPerPhase)
	fmt.Println("phases: early -> late -> early")
	fmt.Println()

	staticWaste, staticBTP := run(false)
	adaptWaste, adaptBTP := run(true)

	fmt.Printf("%-16s %-24s %s\n", "policy", "BTP at phase ends", "wire bytes wasted on discarded pushes")
	fmt.Printf("%-16s %-24v %d\n", "static 760", staticBTP, staticWaste)
	fmt.Printf("%-16s %-24v %d\n", "adaptive AIMD", adaptBTP, adaptWaste)
	fmt.Println()
	fmt.Println("The controller grows the push while the receiver is early, halves it")
	fmt.Println("on every overflow once the receiver turns late, and recovers when the")
	fmt.Println("receiver turns early again — the sawtooth hugs the buffer's capacity.")
}
