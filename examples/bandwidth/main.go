// Bandwidth sweeps message sizes on both routes and prints achieved
// bandwidth using the paper's methodology (time for the message plus a
// 4-byte acknowledgement, minus the 4-byte single-trip time).
//
// Intranode, the cross-space zero buffer keeps the whole transfer at one
// memory copy, so bandwidth approaches the copy engine's streaming rate
// (paper: 350.9 MB/s peak, ~66 % of the 533 MB/s bus). Internode, the
// 100 Mbit/s wire dominates and bandwidth saturates near 12.1 MB/s.
//
// Run with: go run ./examples/bandwidth
package main

import (
	"flag"
	"fmt"

	"pushpull/internal/bench"
	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
)

func main() {
	short := flag.Bool("short", false, "shrink the run for smoke testing")
	flag.Parse()
	sizes := []int{256, 1024, 4096, 8192, 16384, 32768, 65536}
	intraIters, interIters := 100, 50
	if *short {
		sizes = []int{1024, 8192}
		intraIters, interIters = 20, 10
	}

	fmt.Println("== intranode (cross-space zero buffer, one copy) ==")
	fmt.Printf("%-10s %12s\n", "size(B)", "MB/s")
	for _, n := range sizes {
		opts := pushpull.DefaultOptions()
		opts.PushedBufBytes = 64 << 10
		cfg := cluster.DefaultConfig()
		cfg.Opts = opts
		w := bench.Workload{Cluster: cfg, Intra: true, Size: n, Iters: intraIters}
		fmt.Printf("%-10d %12.1f\n", n, bench.Bandwidth(w))
	}

	fmt.Println("\n== internode (100 Mbit/s Fast Ethernet) ==")
	fmt.Printf("%-10s %12s\n", "size(B)", "MB/s")
	for _, n := range sizes {
		cfg := cluster.DefaultConfig()
		w := bench.Workload{Cluster: cfg, Size: n, Iters: interIters}
		fmt.Printf("%-10d %12.2f\n", n, bench.Bandwidth(w))
	}
}
