// Collectives runs MPI-style collective operations — barrier, broadcast,
// allreduce, allgather, all-to-all — over Push-Pull Messaging on a
// four-node COMP, comparing both the messaging mechanisms underneath
// them and the collective algorithms on top (binomial tree vs ring,
// recursive doubling vs reduce+broadcast). This is the
// parallel-application layer the paper's introduction motivates: its
// closing claim, that Push-Pull "could flexibly adapt to the cluster
// environment with different computation load", is what decides
// collective performance, because collective steps are exactly the
// early-/late-receiver races of §5.3.
//
// The final section overlaps compute with a non-blocking IAllReduce —
// the application-level payoff of a messaging layer that progresses in
// the background.
//
// Run with: go run ./examples/collectives
package main

import (
	"flag"
	"fmt"

	"pushpull/coll"
	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
)

const (
	numNodes     = 4
	procsPerNode = 2
	vectorElems  = 512 // 4 KB allreduce vectors
)

// iterations is shrunk by -short for smoke runs.
var iterations = 10

func world(mode pushpull.Mode) *coll.World {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = numNodes
	cfg.ProcsPerNode = procsPerNode
	cfg.Opts.Mode = mode
	cfg.Opts.PushedBufBytes = 64 << 10
	return coll.NewWorld(cluster.New(cfg))
}

// timeCollective measures the virtual time from the synchronized start
// until every rank has finished its iterations of body.
func timeCollective(mode pushpull.Mode, body func(r *coll.Rank)) sim.Duration {
	w := world(mode)
	var start, end sim.Time
	w.Run(func(r *coll.Rank) {
		r.Barrier()
		if r.ID() == 0 {
			start = r.Thread().Now()
		}
		for i := 0; i < iterations; i++ {
			body(r)
		}
		r.Barrier()
		if r.ID() == 0 {
			end = r.Thread().Now()
		}
	})
	return end.Sub(start) / sim.Duration(iterations)
}

func main() {
	short := flag.Bool("short", false, "shrink the run for smoke testing")
	flag.Parse()
	if *short {
		iterations = 3
	}
	modes := []pushpull.Mode{pushpull.PushPull, pushpull.PushZero, pushpull.PushAll, pushpull.ThreePhase}

	fmt.Printf("%d nodes x %d procs = %d ranks, %d-element int64 vectors, mean of %d iterations\n\n",
		numNodes, procsPerNode, numNodes*procsPerNode, vectorElems, iterations)
	fmt.Printf("%-30s", "collective (µs/op)")
	for _, m := range modes {
		fmt.Printf("%14s", m)
	}
	fmt.Println()

	row := func(name string, body func(r *coll.Rank)) {
		fmt.Printf("%-30s", name)
		for _, m := range modes {
			fmt.Printf("%14.1f", timeCollective(m, body).Microseconds())
		}
		fmt.Println()
	}

	vec := func(r *coll.Rank) []byte {
		vals := make([]int64, vectorElems)
		for i := range vals {
			vals[i] = int64(r.ID() + i)
		}
		return coll.FromInt64s(vals)
	}

	row("barrier dissemination", func(r *coll.Rank) { r.Barrier() })
	row("barrier tree", func(r *coll.Rank) { r.Barrier(coll.WithAlgorithm(coll.Tree)) })
	row("bcast 4KB binomial", func(r *coll.Rank) {
		var data []byte
		if r.ID() == 0 {
			data = vec(r)
		}
		r.Bcast(0, data, vectorElems*8)
	})
	row("bcast 4KB ring", func(r *coll.Rank) {
		var data []byte
		if r.ID() == 0 {
			data = vec(r)
		}
		r.Bcast(0, data, vectorElems*8, coll.WithAlgorithm(coll.Ring))
	})
	row("allreduce tree+bcast", func(r *coll.Rank) { r.AllReduce(vec(r), coll.SumInt64) })
	row("allreduce recursive-dbl", func(r *coll.Rank) {
		r.AllReduce(vec(r), coll.SumInt64, coll.WithAlgorithm(coll.RecursiveDoubling))
	})
	row("allreduce ring (ordered)", func(r *coll.Rank) {
		r.AllReduce(vec(r), coll.SumInt64, coll.WithAlgorithm(coll.Ring))
	})
	row("allreduce rs-ag", func(r *coll.Rank) {
		r.AllReduce(vec(r), coll.SumInt64, coll.WithAlgorithm(coll.RSAG))
	})
	row("allgather 4KB ring", func(r *coll.Rank) { r.AllGather(vec(r), vectorElems*8) })
	row("allgather 4KB tree", func(r *coll.Rank) {
		r.AllGather(vec(r), vectorElems*8, coll.WithAlgorithm(coll.Tree))
	})
	row("alltoall 512B blocks", func(r *coll.Rank) {
		blocks := make([][]byte, r.Size())
		for i := range blocks {
			blocks[i] = make([]byte, 512)
		}
		r.AllToAll(blocks, 512)
	})

	// Long vectors are where the segmented and bandwidth-optimal
	// algorithms earn their keep: the pipelined ring keeps every link
	// busy at once, and rs-ag reduces 1/P blocks instead of moving full
	// vectors through a root.
	const longN = 64 << 10
	longVec := func(r *coll.Rank) []byte {
		b := make([]byte, longN)
		for i := range b {
			b[i] = byte(r.ID() + i)
		}
		return b
	}
	longBcast := func(opts ...coll.Opt) float64 {
		return timeCollective(pushpull.PushPull, func(r *coll.Rank) {
			var data []byte
			if r.ID() == 0 {
				data = longVec(r)
			}
			r.Bcast(0, data, longN, opts...)
		}).Microseconds()
	}
	longAllreduce := func(alg coll.Algorithm) float64 {
		return timeCollective(pushpull.PushPull, func(r *coll.Rank) {
			r.AllReduce(longVec(r), coll.XorBytes, coll.WithAlgorithm(alg))
		}).Microseconds()
	}
	fmt.Printf("\nlong vectors (64 KiB, push-pull): bcast ring %.0f µs vs ring-seg %.0f µs; allreduce tree %.0f µs vs rs-ag %.0f µs\n",
		longBcast(coll.WithAlgorithm(coll.Ring)),
		longBcast(coll.WithAlgorithm(coll.RingSegmented), coll.WithSegment(8192)),
		longAllreduce(coll.Tree), longAllreduce(coll.RSAG))

	// Overlap: the same compute+allreduce loop, blocking vs nonblocking.
	const computeCycles = 2_000_000
	blocking := timeCollective(pushpull.PushPull, func(r *coll.Rank) {
		r.Compute(computeCycles)
		r.AllReduce(vec(r), coll.SumInt64)
	})
	overlapped := timeCollective(pushpull.PushPull, func(r *coll.Rank) {
		req := r.IAllReduce(vec(r), coll.SumInt64)
		// One uninterrupted compute phase: the world's progression
		// tasklet posts each next round as the previous one completes,
		// so the collective advances under the compute with no Test
		// polling — the overlap measured here is the protocol's, not an
		// artifact of how finely the application slices its loop.
		r.Compute(computeCycles)
		if _, err := req.Wait(); err != nil {
			panic(err)
		}
	})
	fmt.Printf("\ncompute‖allreduce overlap (push-pull): blocking %.1f µs/iter, IAllReduce+Compute+Wait %.1f µs/iter (%.0f%% saved)\n",
		blocking.Microseconds(), overlapped.Microseconds(),
		100*(1-overlapped.Microseconds()/blocking.Microseconds()))

	fmt.Println("\nPush-Pull tracks the best mechanism per pattern: eager enough to win")
	fmt.Println("the early-receiver races inside trees, bounded enough not to overflow")
	fmt.Println("under all-to-all bursts; three-phase pays its handshake on every step.")
	fmt.Println("Algorithm choice is a second, independent axis: log-round trees win")
	fmt.Println("latency, rings win bandwidth and pin an ordered reduction.")
}
