// Collectives runs MPI-style collective operations — barrier, broadcast,
// allreduce (two algorithms), allgather, all-to-all — over Push-Pull
// Messaging on a four-node COMP, and compares the messaging mechanisms
// underneath them. This is the parallel-application layer the paper's
// introduction motivates: its closing claim, that Push-Pull "could
// flexibly adapt to the cluster environment with different computation
// load", is what decides collective performance, because collective
// steps are exactly the early-/late-receiver races of §5.3.
//
// Run with: go run ./examples/collectives
package main

import (
	"flag"
	"fmt"

	"pushpull/internal/cluster"
	"pushpull/internal/collective"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
)

const (
	numNodes     = 4
	procsPerNode = 2
	vectorElems  = 512 // 4 KB allreduce vectors
)

// iterations is shrunk by -short for smoke runs.
var iterations = 10

func world(mode pushpull.Mode) *collective.World {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = numNodes
	cfg.ProcsPerNode = procsPerNode
	cfg.Opts.Mode = mode
	cfg.Opts.PushedBufBytes = 64 << 10
	return collective.NewWorld(cluster.New(cfg))
}

// timeCollective measures the virtual time from the synchronized start
// until every rank has finished its iterations of body.
func timeCollective(mode pushpull.Mode, body func(r *collective.Rank)) sim.Duration {
	w := world(mode)
	var start, end sim.Time
	w.Run(func(r *collective.Rank) {
		r.Barrier()
		if r.ID() == 0 {
			start = r.Thread().Now()
		}
		for i := 0; i < iterations; i++ {
			body(r)
		}
		r.Barrier()
		if r.ID() == 0 {
			end = r.Thread().Now()
		}
	})
	return end.Sub(start) / sim.Duration(iterations)
}

func main() {
	short := flag.Bool("short", false, "shrink the run for smoke testing")
	flag.Parse()
	if *short {
		iterations = 3
	}
	modes := []pushpull.Mode{pushpull.PushPull, pushpull.PushZero, pushpull.PushAll, pushpull.ThreePhase}

	fmt.Printf("%d nodes x %d procs = %d ranks, %d-element int64 vectors, mean of %d iterations\n\n",
		numNodes, procsPerNode, numNodes*procsPerNode, vectorElems, iterations)
	fmt.Printf("%-28s", "collective (µs/op)")
	for _, m := range modes {
		fmt.Printf("%14s", m)
	}
	fmt.Println()

	row := func(name string, body func(r *collective.Rank)) {
		fmt.Printf("%-28s", name)
		for _, m := range modes {
			fmt.Printf("%14.1f", timeCollective(m, body).Microseconds())
		}
		fmt.Println()
	}

	vec := func(r *collective.Rank) []byte {
		vals := make([]int64, vectorElems)
		for i := range vals {
			vals[i] = int64(r.ID() + i)
		}
		return collective.FromInt64s(vals)
	}

	row("barrier", func(r *collective.Rank) { r.Barrier() })
	row("bcast 4KB", func(r *collective.Rank) {
		var data []byte
		if r.ID() == 0 {
			data = vec(r)
		}
		r.Bcast(0, data, vectorElems*8)
	})
	row("allreduce tree+bcast", func(r *collective.Rank) { r.AllReduce(vec(r), collective.SumInt64) })
	row("allreduce recursive-dbl", func(r *collective.Rank) { r.AllReduceRD(vec(r), collective.SumInt64) })
	row("allgather 4KB", func(r *collective.Rank) { r.AllGather(vec(r), vectorElems*8) })
	row("alltoall 512B blocks", func(r *collective.Rank) {
		blocks := make([][]byte, r.Size())
		for i := range blocks {
			blocks[i] = make([]byte, 512)
		}
		r.AllToAll(blocks, 512)
	})

	fmt.Println("\nPush-Pull tracks the best mechanism per pattern: eager enough to win")
	fmt.Println("the early-receiver races inside trees, bounded enough not to overflow")
	fmt.Println("under all-to-all bursts; three-phase pays its handshake on every step.")
}
