// Example scenario: define a custom workload declaratively and run it
// through the scenario engine — no bespoke driver code, just a spec.
//
// The workload here is one the original bench harness could not
// express: an irregular wavefront over a six-node switched cluster
// where every delivered message triggers two sends whose sizes and
// targets are derived from the payload bytes, first with the paper's
// static BTP=760 and then with the adaptive AIMD controller, same seed,
// so the two JSON results are directly comparable.
package main

import (
	"flag"
	"fmt"

	"pushpull/internal/scenario"
)

func main() {
	short := flag.Bool("short", false, "shrink the run for smoke testing")
	flag.Parse()

	spec := scenario.DefaultSpec()
	spec.Name = "example-wavefront"
	spec.Description = "irregular data-dependent traffic, static vs adaptive BTP"
	spec.Seed = 42
	spec.Topology = scenario.Topology{Kind: "switch", Nodes: 6, ProcsPerNode: 1, Policy: "symmetric"}
	spec.Traffic = scenario.Traffic{
		Pattern:  "wavefront",
		Size:     1024, // root message size
		Messages: 4,    // initial wavefront width
		Fanout:   2,
		Depth:    4,
		// Above the 760 B BTP: every message keeps a pull phase, so full
		// pushed buffers discard-and-repull instead of refusing (a
		// refused fully-eager fragment can stall the go-back-N stream
		// for good under convergent traffic).
		MinSize: 800,
		MaxSize: 2400,
	}

	if *short {
		spec.Traffic.Messages = 2
		spec.Traffic.Depth = 3
	}
	for _, adaptive := range []bool{false, true} {
		spec.Protocol.Adaptive = adaptive
		res, err := scenario.Run(spec)
		if err != nil {
			panic(err)
		}
		label := "static BTP"
		if adaptive {
			label = "adaptive AIMD"
		}
		fmt.Printf("== %s ==\n%s\n", label, res.JSON())
	}
}
