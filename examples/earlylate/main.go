// Earlylate reproduces the paper's §5.3 scenario interactively: a
// compute-then-communicate ping-pong (Figure 5 pseudocode) where NOP
// counts steer whether the receiver posts its receive before or after the
// send, and the three messaging mechanisms react very differently.
//
// The run prints, for one early and one late configuration, the measured
// single-trip latency of Push-Zero, Push-Pull and Push-All at a few
// message sizes — including Push-All's go-back-N collapse above 3 KB in
// the late case.
//
// Run with: go run ./examples/earlylate
package main

import (
	"flag"
	"fmt"

	"pushpull/internal/bench"
	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
)

func main() {
	short := flag.Bool("short", false, "shrink the run for smoke testing")
	flag.Parse()
	iters := 50
	if *short {
		iters = 6
	}
	type scenario struct {
		name string
		x, y int64
	}
	// Paper §5.3: early receiver x=500k/y=100k NOPs; late x=100k/y=300k.
	scenarios := []scenario{
		{"early receiver (x=500k, y=100k NOPs)", 500_000, 100_000},
		{"late receiver  (x=100k, y=300k NOPs)", 100_000, 300_000},
	}
	modes := []pushpull.Mode{pushpull.PushZero, pushpull.PushPull, pushpull.PushAll}
	sizes := []int{1024, 3072, 8192}

	for _, sc := range scenarios {
		fmt.Printf("== %s ==\n", sc.name)
		fmt.Printf("%-10s", "size(B)")
		for _, m := range modes {
			fmt.Printf(" %14s", m)
		}
		fmt.Println("   single-trip µs")
		for _, n := range sizes {
			fmt.Printf("%-10d", n)
			for _, m := range modes {
				opts := pushpull.DefaultOptions()
				opts.Mode = m
				opts.PushedBufBytes = 4096 // the paper's Fig. 6 buffer
				cfg := cluster.DefaultConfig()
				cfg.Opts = opts
				w := bench.Workload{Cluster: cfg, Size: n, Iters: iters}
				fmt.Printf(" %14.1f", bench.EarlyLate(w, sc.x, sc.y).TrimmedMean)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("note the Push-All collapse at 3072 B in the late case: its third")
	fmt.Println("fragment finds the 4 KB pushed buffer full, is dropped, and only a")
	fmt.Println("go-back-N retransmission timeout (~150 ms round trip) recovers it.")
}
