// Quickstart: the smallest complete Push-Pull Messaging program.
//
// It builds the paper's two-node testbed (quad Pentium Pro SMPs on
// 100 Mbit/s Fast Ethernet, simulated in virtual time), sends one message
// from a process on node 0 to a process on node 1, and prints what
// arrived and how long the simulated transfer took.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pushpull/internal/cluster"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

func main() {
	// The default configuration is the paper's testbed with fully
	// optimized Push-Pull (BTP(1)=80, BTP(2)=680, masking + overlapping).
	c := cluster.New(cluster.DefaultConfig())

	sender := c.Endpoint(0, 0)   // process 0 on node 0
	receiver := c.Endpoint(1, 0) // process 0 on node 1

	msg := []byte("hello from node 0 over simulated Fast Ethernet")
	src := sender.Alloc(len(msg))   // page-aligned source buffer
	dst := receiver.Alloc(len(msg)) // destination buffer

	// Application threads run on specific CPUs of their SMP node and are
	// charged virtual time for every protocol stage.
	c.Spawn(0, sender.CPU, "sender", func(t *smp.Thread) {
		start := t.Now()
		if err := sender.Send(t, receiver.ID, src, msg); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("send() returned after %v (push phase done; pull proceeds asynchronously)\n",
			t.Now().Sub(start))
	})
	c.Spawn(1, receiver.CPU, "receiver", func(t *smp.Thread) {
		start := t.Now()
		got, err := receiver.Recv(t, sender.ID, dst, len(msg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recv() returned %q after %v\n", got, t.Now().Sub(start))
	})

	end := c.Run()
	_ = sim.Time(end)
	fmt.Printf("virtual time elapsed: %v\n", end)
}
