// Quickstart: the smallest complete Push-Pull Messaging program.
//
// It builds the paper's two-node testbed (quad Pentium Pro SMPs on
// 100 Mbit/s Fast Ethernet, simulated in virtual time), sends one message
// from a process on node 0 to a process on node 1 through the public
// comm API, and prints what arrived and how long the simulated transfer
// took.
//
// Run with: go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	"pushpull/comm"
	"pushpull/internal/cluster"
	"pushpull/internal/sim"
)

func main() {
	flag.Bool("short", false, "shrink the run for smoke testing (this example is already minimal)")
	flag.Parse()

	// The default configuration is the paper's testbed with fully
	// optimized Push-Pull (BTP(1)=80, BTP(2)=680, masking + overlapping).
	c := cluster.New(cluster.DefaultConfig())

	sender := comm.At(c, 0, 0)   // process 0 on node 0
	receiver := comm.At(c, 1, 0) // process 0 on node 1

	msg := []byte("hello from node 0 over simulated Fast Ethernet")

	// Application threads run on specific CPUs of their SMP node and are
	// charged virtual time for every protocol stage.
	c.Spawn(0, 0, "sender", func(t *comm.Thread) {
		start := t.Now()
		if err := sender.Send(t, receiver.ID(), msg); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("send() returned after %v (push phase done; pull proceeds asynchronously)\n",
			t.Now().Sub(start))
	})
	c.Spawn(1, 0, "receiver", func(t *comm.Thread) {
		start := t.Now()
		got, err := receiver.Recv(t, sender.ID(), len(msg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recv() returned %q after %v\n", got, t.Now().Sub(start))
	})

	end, err := c.RunWithin(sim.Duration(10 * sim.Second))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual time elapsed: %v\n", end)
}
