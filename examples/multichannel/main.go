// Multichannel exercises the part of the design the paper motivates but
// cannot show on a two-node testbed: many concurrent channels on a larger
// COMP, sharing NICs and pushed buffers, with symmetric interrupts
// spreading reception handling across each node's processors.
//
// Four quad-CPU nodes hang off a store-and-forward switch. Every node
// runs three processes; each process sends a burst of messages to one
// process on every other node and receives the symmetric traffic. The
// run reports per-node handler distribution across CPUs (the symmetric-
// interrupt load balancing at work) and verifies that every channel
// delivered its messages in order and intact.
//
// Run with: go run ./examples/multichannel
package main

import (
	"fmt"
	"log"

	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

const (
	nodes     = 4
	procs     = 3 // per node
	msgsPer   = 5 // per channel
	msgSize   = 2048
	pushedBuf = 64 << 10
)

func main() {
	opts := pushpull.DefaultOptions()
	opts.PushedBufBytes = pushedBuf
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cfg.ProcsPerNode = procs
	cfg.Opts = opts
	cfg.UseSwitch = true
	c := cluster.New(cfg)

	payload := func(fromNode, fromProc, seq int) []byte {
		b := make([]byte, msgSize)
		for i := range b {
			b[i] = byte(fromNode*31 + fromProc*7 + seq + i)
		}
		return b
	}

	checked := 0
	for node := 0; node < nodes; node++ {
		for proc := 0; proc < procs; proc++ {
			self := c.Endpoint(node, proc)
			node, proc := node, proc

			// Sender thread: a burst to the same-numbered process on
			// every other node.
			src := self.Alloc(msgSize)
			c.Spawn(node, self.CPU, fmt.Sprintf("tx-n%dp%d", node, proc), func(t *smp.Thread) {
				for dst := 0; dst < nodes; dst++ {
					if dst == node {
						continue
					}
					to := c.Endpoint(dst, proc).ID
					for seq := 0; seq < msgsPer; seq++ {
						if err := self.Send(t, to, src, payload(node, proc, seq)); err != nil {
							log.Fatal(err)
						}
					}
				}
			})

			// Receiver thread: drain every inbound channel in order.
			dstBuf := self.Alloc(msgSize)
			c.Spawn(node, self.CPU, fmt.Sprintf("rx-n%dp%d", node, proc), func(t *smp.Thread) {
				for srcNode := 0; srcNode < nodes; srcNode++ {
					if srcNode == node {
						continue
					}
					from := c.Endpoint(srcNode, proc).ID
					for seq := 0; seq < msgsPer; seq++ {
						got, err := self.Recv(t, from, dstBuf, msgSize)
						if err != nil {
							log.Fatal(err)
						}
						want := payload(srcNode, proc, seq)
						for i := range want {
							if got[i] != want[i] {
								log.Fatalf("corruption on %v->n%d.p%d message %d", from, node, proc, seq)
							}
						}
						checked++
					}
				}
			})
		}
	}

	end := c.Run()
	total := nodes * procs * (nodes - 1) * msgsPer
	fmt.Printf("delivered %d/%d messages (%d channels) intact in %v of virtual time\n",
		checked, total, nodes*procs*(nodes-1), end)

	fmt.Println("\nper-node CPU busy time (handler work spread by symmetric interrupts):")
	for i, n := range c.Nodes {
		fmt.Printf("  node %d:", i)
		for _, cpu := range n.CPUs {
			fmt.Printf("  cpu%d %8v", cpu.ID, cpu.BusyTime())
		}
		fmt.Println()
	}

	var retrans uint64
	for i := range c.Stacks {
		for j := range c.Stacks {
			if i == j {
				continue
			}
			snd, _ := c.Stacks[i].Session(j)
			retrans += snd.Retransmissions()
		}
	}
	fmt.Printf("\ngo-back-N retransmissions across all %d sessions: %d\n", nodes*(nodes-1), retrans)
	fmt.Printf("switch drops: %d\n", c.Switch.Dropped())
	_ = sim.Time(0)
}
