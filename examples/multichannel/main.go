// Multichannel exercises the part of the design the paper motivates but
// cannot show on a two-node testbed: many concurrent channels on a larger
// COMP, sharing NICs and pushed buffers, with symmetric interrupts
// spreading reception handling across each node's processors.
//
// Four quad-CPU nodes hang off a store-and-forward switch. Every node
// runs three processes; each process sends a burst of messages to one
// process on every other node and receives the symmetric traffic. Each
// message is tagged with its burst sequence number, and the receivers
// drain each channel with tag-narrowed receives — exercising the comm
// API's tag lanes across many concurrent per-channel sessions. The run
// reports per-node handler distribution across CPUs (the symmetric-
// interrupt load balancing at work) and verifies that every channel
// delivered its messages in order and intact.
//
// Run with: go run ./examples/multichannel
package main

import (
	"flag"
	"fmt"
	"log"

	"pushpull/comm"
	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
)

const (
	nodes     = 4
	procs     = 3 // per node
	msgSize   = 2048
	pushedBuf = 64 << 10
)

func main() {
	short := flag.Bool("short", false, "shrink the run for smoke testing")
	flag.Parse()
	msgsPer := 5 // per channel
	if *short {
		msgsPer = 2
	}

	opts := pushpull.DefaultOptions()
	opts.PushedBufBytes = pushedBuf
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cfg.ProcsPerNode = procs
	cfg.Opts = opts
	cfg.UseSwitch = true
	c := cluster.New(cfg)

	payload := func(fromNode, fromProc, seq int) []byte {
		b := make([]byte, msgSize)
		for i := range b {
			b[i] = byte(fromNode*31 + fromProc*7 + seq + i)
		}
		return b
	}

	checked := 0
	for node := 0; node < nodes; node++ {
		for proc := 0; proc < procs; proc++ {
			self := comm.At(c, node, proc)
			node, proc := node, proc

			// Sender thread: a burst to the same-numbered process on
			// every other node, each message tagged with its sequence.
			c.Spawn(node, self.Endpoint().CPU, fmt.Sprintf("tx-n%dp%d", node, proc), func(t *comm.Thread) {
				for dst := 0; dst < nodes; dst++ {
					if dst == node {
						continue
					}
					to := comm.At(c, dst, proc).ID()
					for seq := 0; seq < msgsPer; seq++ {
						if err := self.Send(t, to, payload(node, proc, seq), comm.WithTag(seq)); err != nil {
							log.Fatal(err)
						}
					}
				}
			})

			// Receiver thread: drain every inbound channel, narrowing
			// each receive to the expected burst tag.
			c.Spawn(node, self.Endpoint().CPU, fmt.Sprintf("rx-n%dp%d", node, proc), func(t *comm.Thread) {
				for srcNode := 0; srcNode < nodes; srcNode++ {
					if srcNode == node {
						continue
					}
					from := comm.At(c, srcNode, proc)
					for seq := 0; seq < msgsPer; seq++ {
						got, st, err := self.From(from.ID()).RecvMsg(t, msgSize, comm.WithTag(seq))
						if err != nil {
							log.Fatal(err)
						}
						if st.Tag != seq {
							log.Fatalf("message from %v matched tag %d, wanted %d", from.ID(), st.Tag, seq)
						}
						want := payload(srcNode, proc, seq)
						for i := range want {
							if got[i] != want[i] {
								log.Fatalf("corruption on %v->n%d.p%d message %d", from.ID(), node, proc, seq)
							}
						}
						checked++
					}
				}
			})
		}
	}

	end, err := c.RunWithin(sim.Duration(120 * sim.Second))
	if err != nil {
		log.Fatal(err)
	}
	total := nodes * procs * (nodes - 1) * msgsPer
	fmt.Printf("delivered %d/%d messages (%d channels) intact in %v of virtual time\n",
		checked, total, nodes*procs*(nodes-1), end)

	fmt.Println("\nper-node CPU busy time (handler work spread by symmetric interrupts):")
	for i, n := range c.Nodes {
		fmt.Printf("  node %d:", i)
		for _, cpu := range n.CPUs {
			fmt.Printf("  cpu%d %8v", cpu.ID, cpu.BusyTime())
		}
		fmt.Println()
	}

	var retrans, sessions uint64
	for i := range c.Stacks {
		sessions += uint64(c.Stacks[i].Sessions())
		for j := range c.Stacks {
			if i != j {
				retrans += c.Stacks[i].LinkStats(j).Retransmissions
			}
		}
	}
	fmt.Printf("\ngo-back-N retransmissions across %d per-channel session halves: %d\n", sessions, retrans)
	fmt.Printf("switch drops: %d\n", c.Switch.Dropped())
}
