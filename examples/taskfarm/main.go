// Taskfarm runs a master-worker farm — the other classic COMP
// application shape besides the stencil — over the public comm API.
// A master on node 0 deals variable-sized work items to self-scheduling
// workers spread across the cluster's remaining processors; each worker
// returns its result and implicitly requests the next item. The master
// receives results with comm.AnySource, so the next task goes to
// whichever worker finished first — true self-scheduling, which the old
// per-channel probe order could only approximate. Irregular task sizes
// mean workers' receives are never synchronized with the master's sends
// — the exact asynchrony the paper's early/late receiver tests (§5.3)
// probe, and the pushed buffer absorbs.
//
// Run with: go run ./examples/taskfarm
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"

	"pushpull/comm"
	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
)

const (
	numNodes   = 3
	resultSize = 2048 // each worker returns a 2 KB result
)

// taskCycles returns the irregular compute cost of task i.
func taskCycles(i int) int64 {
	return int64(40_000 + (i*2654435761)%360_000) // 0.2 .. 2 ms
}

func run(mode pushpull.Mode, numTasks int) (makespan sim.Time, perWorker []int) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = numNodes
	cfg.ProcsPerNode = 2
	cfg.Opts.Mode = mode
	cfg.Opts.PushedBufBytes = 16 << 10
	c := cluster.New(cfg)

	master := comm.At(c, 0, 0)
	var workers []*comm.Comm
	workerIdx := make(map[comm.ProcessID]int)
	for n := 0; n < numNodes; n++ {
		for p := 0; p < 2; p++ {
			if n == 0 && p == 0 {
				continue // the master's slot
			}
			w := comm.At(c, n, p)
			workerIdx[w.ID()] = len(workers)
			workers = append(workers, w)
		}
	}
	perWorker = make([]int, len(workers))

	// Master: deal tasks on demand; a result doubles as a work request.
	c.Spawn(0, 0, "master", func(t *comm.Thread) {
		task := make([]byte, 8)
		next := 0
		deal := func(to comm.ProcessID) {
			var payload []byte
			if next < numTasks {
				binary.LittleEndian.PutUint64(task, uint64(next))
				payload = task
			} else {
				payload = []byte{0xFF} // poison pill: 1-byte stop marker
			}
			next++
			if err := master.Send(t, to, payload); err != nil {
				panic(err)
			}
		}
		// Prime every worker with one task.
		for w := range workers {
			deal(workers[w].ID())
		}
		// Whichever worker answers first gets the next task.
		for done := 0; done < numTasks; done++ {
			_, st, err := master.From(comm.AnySource).RecvMsg(t, resultSize)
			if err != nil {
				panic(err)
			}
			perWorker[workerIdx[st.Source]]++
			deal(st.Source)
		}
		makespan = t.Now()
	})

	for w := range workers {
		w := w
		cm := workers[w]
		c.Spawn(cm.ID().Node, cm.Endpoint().CPU, fmt.Sprintf("worker%d", w), func(t *comm.Thread) {
			result := make([]byte, resultSize)
			for {
				b, err := cm.Recv(t, master.ID(), 8)
				if err != nil {
					panic(err)
				}
				if len(b) == 1 {
					return // poison pill
				}
				id := int(binary.LittleEndian.Uint64(b))
				t.Compute(taskCycles(id))
				if err := cm.Send(t, master.ID(), result); err != nil {
					panic(err)
				}
			}
		})
	}
	if _, err := c.RunWithin(sim.Duration(120 * sim.Second)); err != nil {
		log.Fatal(err)
	}
	return makespan, perWorker
}

func main() {
	short := flag.Bool("short", false, "shrink the run for smoke testing")
	flag.Parse()
	numTasks := 48
	if *short {
		numTasks = 12
	}

	fmt.Printf("%d irregular tasks (0.2-2 ms), %d workers on %d quad-CPU nodes, 2 KB results\n\n",
		numTasks, numNodes*2-1, numNodes)
	fmt.Printf("%-14s %12s   %s\n", "mode", "makespan", "tasks per worker")
	for _, mode := range []pushpull.Mode{pushpull.PushPull, pushpull.PushZero, pushpull.PushAll, pushpull.ThreePhase} {
		makespan, per := run(mode, numTasks)
		fmt.Printf("%-14s %12v   %v\n", mode, makespan, per)
	}
	fmt.Println("\nThe farm's any-source self-scheduling keeps workers busy regardless of")
	fmt.Println("mechanism; the messaging mode decides how much of the task hand-off")
	fmt.Println("latency the workers eat between tasks — three-phase pays twice per task.")
}
