// Taskfarm runs a master-worker farm — the other classic COMP
// application shape besides the stencil — over Push-Pull Messaging.
// A master on node 0 deals variable-sized work items to self-scheduling
// workers spread across the cluster's remaining processors; each worker
// returns its result and implicitly requests the next item. Irregular
// task sizes mean workers' receives are never synchronized with the
// master's sends — the exact asynchrony the paper's early/late receiver
// tests (§5.3) probe, and the pushed buffer absorbs.
//
// Run with: go run ./examples/taskfarm
package main

import (
	"encoding/binary"
	"fmt"

	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

const (
	numNodes   = 3
	numTasks   = 48
	resultSize = 2048 // each worker returns a 2 KB result
)

// taskCycles returns the irregular compute cost of task i.
func taskCycles(i int) int64 {
	return int64(40_000 + (i*2654435761)%360_000) // 0.2 .. 2 ms
}

func run(mode pushpull.Mode) (makespan sim.Time, perWorker []int) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = numNodes
	cfg.ProcsPerNode = 2
	cfg.Opts.Mode = mode
	cfg.Opts.PushedBufBytes = 16 << 10
	c := cluster.New(cfg)

	master := c.Endpoint(0, 0)
	var workers []*pushpull.Endpoint
	for n := 0; n < numNodes; n++ {
		for p := 0; p < 2; p++ {
			if n == 0 && p == 0 {
				continue // the master's slot
			}
			workers = append(workers, c.Endpoint(n, p))
		}
	}
	perWorker = make([]int, len(workers))

	// Master: deal tasks on demand; a result doubles as a work request.
	c.Nodes[0].Spawn("master", master.CPU, func(t *smp.Thread) {
		task := make([]byte, 8)
		taskBuf := master.Alloc(8)
		dst := master.Alloc(resultSize)
		next := 0
		// Prime every worker with one task.
		for w := range workers {
			binary.LittleEndian.PutUint64(task, uint64(next))
			next++
			if err := master.Send(t, workers[w].ID, taskBuf, task); err != nil {
				panic(err)
			}
		}
		done := 0
		for done < numTasks {
			// Any result releases the next task; receive in round-robin
			// probe order (channels are per-worker FIFO).
			w := done % len(workers)
			if _, err := master.Recv(t, workers[w].ID, dst, resultSize); err != nil {
				panic(err)
			}
			perWorker[w]++
			done++
			binary.LittleEndian.PutUint64(task, uint64(next))
			var payload []byte
			if next < numTasks {
				payload = task
			} else {
				payload = []byte{0xFF} // poison pill: 1-byte stop marker
			}
			next++
			if err := master.Send(t, workers[w].ID, taskBuf, payload); err != nil {
				panic(err)
			}
		}
		makespan = t.Now()
	})

	for w := range workers {
		w := w
		ep := workers[w]
		c.Nodes[ep.ID.Node].Spawn(fmt.Sprintf("worker%d", w), ep.CPU, func(t *smp.Thread) {
			taskDst := ep.Alloc(8)
			result := make([]byte, resultSize)
			resultBuf := ep.Alloc(resultSize)
			for {
				b, err := ep.Recv(t, master.ID, taskDst, 8)
				if err != nil {
					panic(err)
				}
				if len(b) == 1 {
					return // poison pill
				}
				id := int(binary.LittleEndian.Uint64(b))
				t.Compute(taskCycles(id))
				if err := ep.Send(t, master.ID, resultBuf, result); err != nil {
					panic(err)
				}
			}
		})
	}
	c.Run()
	return makespan, perWorker
}

func main() {
	fmt.Printf("%d irregular tasks (0.2-2 ms), %d workers on %d quad-CPU nodes, 2 KB results\n\n",
		numTasks, numNodes*2-1, numNodes)
	fmt.Printf("%-14s %12s   %s\n", "mode", "makespan", "tasks per worker")
	for _, mode := range []pushpull.Mode{pushpull.PushPull, pushpull.PushZero, pushpull.PushAll, pushpull.ThreePhase} {
		makespan, per := run(mode)
		fmt.Printf("%-14s %12v   %v\n", mode, makespan, per)
	}
	fmt.Println("\nThe farm's self-scheduling keeps workers busy regardless of mechanism;")
	fmt.Println("the messaging mode decides how much of the task hand-off latency the")
	fmt.Println("workers eat between tasks — the three-phase handshake pays twice per task.")
}
