package comm

import "pushpull/internal/pushpull"

// ErrPeerUnreachable is the sentinel a failed operation wraps when the
// transport exhausted its retransmission budget toward the remote node
// (Options.GBN.MaxRetries consecutive go-back-N timeouts with no
// acknowledgement progress — see the gbn package). It surfaces through
// the normal completion flow: Op.Wait and Op.Test return it, Op.Status
// reports it in Status.Err, and collectives built on comm (package
// coll) propagate it out of Request.Wait/Test, so a collective over a
// dead link fails fast instead of hanging until the virtual-time budget
// kills the run. Classify with errors.Is(err, ErrPeerUnreachable); the
// wrapped *pushpull.PeerUnreachableError names the node pair.
//
// Once a peer is declared dead the declaration is sticky for the run:
// in-flight operations bound to the peer fail at declaration time, and
// subsequent sends to (or definite-source receives from) it fail
// immediately.
var ErrPeerUnreachable = pushpull.ErrPeerUnreachable
