package comm

import (
	"fmt"

	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/smp"
	"pushpull/internal/vm"
)

// Re-exported protocol types: comm is the public surface, but identities
// and addresses are shared with the stack underneath.
type (
	// ProcessID names one communicating process (node, proc).
	ProcessID = pushpull.ProcessID
	// ChannelID is one directed sender→receiver pair.
	ChannelID = pushpull.ChannelID
	// Status reports what a completed receive matched (source, tag);
	// Status.Valid separates a real envelope from the zero value of a
	// failed or uncompleted operation, whose error lands in Status.Err.
	Status = pushpull.Status
	// Thread is the calling SMP thread every operation charges.
	Thread = smp.Thread
	// VirtAddr is a virtual address in the process's space (WithBuffer).
	VirtAddr = vm.VirtAddr
)

// AnyTag makes a receive match messages of every *application* tag —
// tags below ReservedTag. Reserved-tag traffic (collective rounds in
// package coll) never matches a wildcard, so an AnyTag receive posted
// while a collective is in flight cannot swallow its rounds.
const AnyTag = pushpull.AnyTag

// ReservedTag is the base of the reserved tag space used by
// infrastructure layered on comm (package coll runs each collective on
// its own reserved lane). Application tags must stay below it.
const ReservedTag = pushpull.ReservedTag

// AnySource makes a receive match messages from every sender.
var AnySource = pushpull.AnySource

// Option tunes one operation. Options compose left to right.
type Option func(*opConfig)

type opConfig struct {
	tag    int
	btp    int // -1: protocol default
	buf    VirtAddr
	hasBuf bool
}

func resolve(opts []Option) opConfig {
	cfg := opConfig{tag: 0, btp: -1}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithTag labels a send, or narrows a receive, to the given tag.
// Receives default to tag 0; pass AnyTag to match every tag.
func WithTag(tag int) Option { return func(c *opConfig) { c.tag = tag } }

// WithBTP overrides the internode Push-Pull Bytes-To-Push for one send
// (clamped to [0, len(data)]). Ignored by receives and by the modes
// whose BTP is their defining constant (Push-Zero, Push-All,
// three-phase).
func WithBTP(btp int) Option { return func(c *opConfig) { c.btp = btp } }

// WithBuffer uses the caller-registered buffer at addr instead of the
// channel's managed staging buffer. The region must come from Comm.Alloc
// and be large enough for the operation.
func WithBuffer(addr VirtAddr) Option {
	return func(c *opConfig) { c.buf = addr; c.hasBuf = true }
}

// Comm is one process's messaging handle: the factory for its directed
// Channels and the home of the convenience calls that route through
// them.
type Comm struct {
	ep *pushpull.Endpoint
	tx map[ProcessID]*Channel
	rx map[ProcessID]*Channel
}

// Attach wraps a protocol endpoint in the public API. The handle is
// memoized on the endpoint: repeated Attach (or At) calls for the same
// process return the same Comm, so its channel cache and staging
// buffers are shared by every caller.
func Attach(ep *pushpull.Endpoint) *Comm {
	if c, ok := ep.APIHandle().(*Comm); ok {
		return c
	}
	c := &Comm{
		ep: ep,
		tx: make(map[ProcessID]*Channel),
		rx: make(map[ProcessID]*Channel),
	}
	ep.SetAPIHandle(c)
	return c
}

// At returns the Comm of process proc on node — the usual way to get
// handles from a built cluster.
func At(c *cluster.Cluster, node, proc int) *Comm {
	return Attach(c.Endpoint(node, proc))
}

// ID reports this process's identity.
func (c *Comm) ID() ProcessID { return c.ep.ID }

// Endpoint exposes the wrapped protocol endpoint (for stack-level
// statistics; application code should not need it).
func (c *Comm) Endpoint() *pushpull.Endpoint { return c.ep }

// Alloc reserves a page-aligned registered buffer in the process's
// address space, for use with WithBuffer.
func (c *Comm) Alloc(n int) VirtAddr { return c.ep.Alloc(n) }

// To returns the outgoing channel this process → peer, creating it on
// first use. Channels are cached: repeated calls return the same handle
// (and therefore the same managed staging buffer).
func (c *Comm) To(peer ProcessID) *Channel {
	if ch := c.tx[peer]; ch != nil {
		return ch
	}
	if peer == AnySource {
		panic("comm: To(AnySource) — sends need a concrete destination")
	}
	ch := &Channel{c: c, peer: peer, out: true}
	c.tx[peer] = ch
	return ch
}

// From returns the incoming channel peer → this process, creating it on
// first use. peer may be AnySource for a wildcard receive channel.
func (c *Comm) From(peer ProcessID) *Channel {
	if ch := c.rx[peer]; ch != nil {
		return ch
	}
	ch := &Channel{c: c, peer: peer, out: false}
	c.rx[peer] = ch
	return ch
}

// Send transmits data to peer, blocking until the local send completes
// (the push phase; any pull proceeds asynchronously).
func (c *Comm) Send(t *Thread, to ProcessID, data []byte, opts ...Option) error {
	return c.To(to).Send(t, data, opts...)
}

// Recv blocks until the next eligible message from peer (or AnySource)
// arrives, and returns its bytes. maxLen bounds the accepted size.
func (c *Comm) Recv(t *Thread, from ProcessID, maxLen int, opts ...Option) ([]byte, error) {
	return c.From(from).Recv(t, maxLen, opts...)
}

// Isend starts a nonblocking send to peer and returns its Op.
func (c *Comm) Isend(t *Thread, to ProcessID, data []byte, opts ...Option) *Op {
	return c.To(to).Isend(t, data, opts...)
}

// Irecv starts a nonblocking receive from peer (or AnySource) and
// returns its Op.
func (c *Comm) Irecv(t *Thread, from ProcessID, maxLen int, opts ...Option) *Op {
	return c.From(from).Irecv(t, maxLen, opts...)
}

// IsendAsync is Isend with no posting thread: the posting cost is
// charged to the helper thread that runs the operation. It exists for
// infrastructure that posts from engine context (the collective
// progression tasklet); application code should use Isend.
func (c *Comm) IsendAsync(to ProcessID, data []byte, opts ...Option) *Op {
	return c.To(to).IsendAsync(data, opts...)
}

// IrecvAsync is Irecv with no posting thread (see IsendAsync).
func (c *Comm) IrecvAsync(from ProcessID, maxLen int, opts ...Option) *Op {
	return c.From(from).IrecvAsync(maxLen, opts...)
}

// Channel is one directed channel as seen from this process: outgoing
// (Comm.To) or incoming (Comm.From). It owns a managed staging buffer
// that grows by doubling and is reused across operations, mirroring a
// real application's registered communication buffer.
type Channel struct {
	c      *Comm
	peer   ProcessID
	out    bool
	buf    VirtAddr
	bufCap int
}

// Peer reports the remote end (AnySource for a wildcard receive
// channel).
func (ch *Channel) Peer() ProcessID { return ch.peer }

// ID reports the directed channel identity; meaningless for wildcard
// receive channels.
func (ch *Channel) ID() ChannelID {
	if ch.out {
		return ChannelID{From: ch.c.ep.ID, To: ch.peer}
	}
	return ChannelID{From: ch.peer, To: ch.c.ep.ID}
}

// buffer returns a registered staging address of at least n bytes,
// growing the managed buffer by doubling (from 1 KB) when needed.
func (ch *Channel) buffer(n int) VirtAddr {
	if n == 0 {
		return ch.buf // translation is skipped for empty transfers
	}
	if ch.bufCap < n {
		grown := ch.bufCap * 2
		if grown < 1024 {
			grown = 1024
		}
		for grown < n {
			grown *= 2
		}
		ch.buf = ch.c.ep.Alloc(grown)
		ch.bufCap = grown
	}
	return ch.buf
}

// addr resolves the operation's buffer: WithBuffer wins, otherwise the
// managed staging buffer.
func (ch *Channel) addr(cfg opConfig, n int) VirtAddr {
	if cfg.hasBuf {
		return cfg.buf
	}
	return ch.buffer(n)
}

// Send transmits data on this outgoing channel, blocking until the local
// send completes. Zero-length data is valid and carries only the
// envelope.
func (ch *Channel) Send(t *Thread, data []byte, opts ...Option) error {
	if !ch.out {
		return fmt.Errorf("comm: send on incoming channel %v", ch.ID())
	}
	cfg := resolve(opts)
	return ch.c.ep.SendOpt(t, ch.peer, ch.addr(cfg, len(data)), data,
		pushpull.SendOptions{Tag: cfg.tag, BTP: cfg.btp})
}

// Recv blocks until the next eligible message arrives and returns its
// bytes (at most maxLen).
func (ch *Channel) Recv(t *Thread, maxLen int, opts ...Option) ([]byte, error) {
	b, _, err := ch.RecvMsg(t, maxLen, opts...)
	return b, err
}

// RecvMsg is Recv plus the matched envelope — which sender and tag the
// message carried, informative for AnySource / AnyTag receives.
func (ch *Channel) RecvMsg(t *Thread, maxLen int, opts ...Option) ([]byte, Status, error) {
	if ch.out {
		return nil, Status{}, fmt.Errorf("comm: receive on outgoing channel %v", ch.ID())
	}
	cfg := resolve(opts)
	return ch.c.ep.RecvOpt(t, ch.peer, ch.addr(cfg, maxLen), maxLen,
		pushpull.RecvOptions{Tag: cfg.tag})
}

// Isend starts a nonblocking send on this outgoing channel and returns
// its Op. The data must not be modified until the Op completes.
func (ch *Channel) Isend(t *Thread, data []byte, opts ...Option) *Op {
	if !ch.out {
		return failedOp(fmt.Errorf("comm: send on incoming channel %v", ch.ID()))
	}
	cfg := resolve(opts)
	return &Op{req: ch.c.ep.IsendOpt(t, ch.peer, ch.addr(cfg, len(data)), data,
		pushpull.SendOptions{Tag: cfg.tag, BTP: cfg.btp})}
}

// Irecv starts a nonblocking receive on this incoming channel and
// returns its Op.
func (ch *Channel) Irecv(t *Thread, maxLen int, opts ...Option) *Op {
	if ch.out {
		return failedOp(fmt.Errorf("comm: receive on outgoing channel %v", ch.ID()))
	}
	cfg := resolve(opts)
	return &Op{req: ch.c.ep.IrecvOpt(t, ch.peer, ch.addr(cfg, maxLen), maxLen,
		pushpull.RecvOptions{Tag: cfg.tag})}
}

// IsendAsync starts a nonblocking send with no posting thread (see
// Comm.IsendAsync).
func (ch *Channel) IsendAsync(data []byte, opts ...Option) *Op {
	if !ch.out {
		return failedOp(fmt.Errorf("comm: send on incoming channel %v", ch.ID()))
	}
	cfg := resolve(opts)
	return &Op{req: ch.c.ep.IsendAsyncOpt(ch.peer, ch.addr(cfg, len(data)), data,
		pushpull.SendOptions{Tag: cfg.tag, BTP: cfg.btp})}
}

// IrecvAsync starts a nonblocking receive with no posting thread (see
// Comm.IsendAsync).
func (ch *Channel) IrecvAsync(maxLen int, opts ...Option) *Op {
	if ch.out {
		return failedOp(fmt.Errorf("comm: receive on outgoing channel %v", ch.ID()))
	}
	cfg := resolve(opts)
	return &Op{req: ch.c.ep.IrecvAsyncOpt(ch.peer, ch.addr(cfg, maxLen), maxLen,
		pushpull.RecvOptions{Tag: cfg.tag})}
}
