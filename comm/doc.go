// Package comm is the public messaging API of the Push-Pull simulator:
// the one way application code — collectives, scenario patterns, the
// bench harness and the examples — talks to the protocol stack.
//
// # Model
//
// Every communicating process holds a Comm (obtain one with At, from a
// built cluster, or Attach, from a raw endpoint). The core object is the
// Channel: one *directed* sender→receiver pair, obtained with Comm.To
// (outgoing) or Comm.From (incoming). Each internode channel is backed
// by its own go-back-N sessions — a data lane for fragments and a
// control lane for pull requests — so loss, refusal or backpressure on
// one channel never head-of-line-blocks another. That per-channel
// isolation is what retires the shared-stream RTO livelock: a refused
// fully-eager fragment stalls only its own channel, and the pushed
// buffer keeps draining through the others until the retransmission
// lands.
//
// # Operations
//
// Send and Recv block the calling thread in virtual time exactly like
// the paper's calls; Isend and Irecv return an Op immediately and run
// the operation on a helper thread of the same CPU. Op is the single
// request type: Wait blocks until completion, Test polls, WaitAll
// completes a batch, and Status reports the matched source and tag.
//
// Operations take functional options instead of positional protocol
// arguments:
//
//   - WithTag(k) labels a send or narrows a receive to tag k (receives
//     default to tag 0; AnyTag matches every tag).
//   - WithBTP(n) overrides the internode Push-Pull Bytes-To-Push for one
//     send — the paper's §3 "applications can dynamically change the
//     size of the pushed buffer" knob, per message.
//   - WithBuffer(addr) uses a caller-registered buffer instead of the
//     channel's managed staging buffer.
//
// Receives may name AnySource instead of a concrete peer; RecvMsg (or
// Op.Status) reports which sender and tag actually matched. Matching is
// FIFO within one (channel, tag) lane; wildcards bind the eligible
// message that started arriving first. Zero-length messages are valid
// and carry only their envelope.
//
// # Failure semantics
//
// With a retransmission budget configured (Options.GBN.MaxRetries), a
// peer whose link stays dead long enough is declared unreachable rather
// than retried forever. The failure is structured and total: every
// operation bound to the dead peer — in-flight receives, mid-transfer
// messages, parked synchronous senders — completes with an error
// wrapping ErrPeerUnreachable, Op.Status carries it in Status.Err, and
// later operations naming the peer fail immediately. Without a budget
// (MaxRetries zero, the default) the transport retries forever, exactly
// like the paper's fixed-RTO implementation.
//
// # Buffers
//
// A Channel manages a registered, page-aligned staging buffer that grows
// by doubling, so ordinary callers never touch the address space; the
// simulation still charges every translation and copy the buffer's pages
// cost. Callers that want explicit placement (e.g. to model reuse of a
// pinned region) allocate with Comm.Alloc and pass WithBuffer.
package comm
