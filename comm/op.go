package comm

import (
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
)

// Op is the one request type of the API: every nonblocking operation —
// send or receive — returns an Op, completed with Wait (blocking),
// polled with Test, or batched through WaitAll. Completing an Op more
// than once is valid and returns the same outcome.
type Op struct {
	req *pushpull.Request
	// err short-circuits an operation that failed before it started
	// (e.g. a send posted on an incoming channel).
	err error
}

// failedOp wraps an immediate error in a completed Op, so misuse
// surfaces through the normal Wait/Test flow instead of a nil handle.
func failedOp(err error) *Op { return &Op{err: err} }

// Wait parks the calling thread until the operation completes. For a
// receive it returns the received bytes; for a send the data is nil.
func (op *Op) Wait(t *Thread) ([]byte, error) {
	if op.err != nil {
		return nil, op.err
	}
	return op.req.Wait(t)
}

// Test reports whether the operation has completed, without blocking.
// Once it returns true, data and err are the operation's outcome.
func (op *Op) Test() (done bool, data []byte, err error) {
	if op.err != nil {
		return true, nil, op.err
	}
	return op.req.Test()
}

// Subscribe registers w (a process or tasklet) for one wake when the
// operation completes; it reports false, without registering, if the Op
// is already complete (including an Op that failed before it started).
// Infrastructure layered on comm (the collective progression tasklet in
// package coll) uses it to sleep between rounds instead of polling Test.
func (op *Op) Subscribe(w sim.Waiter) bool {
	if op.err != nil {
		return false
	}
	return op.req.Subscribe(w)
}

// Status reports the completed operation's matched envelope (source and
// tag) — informative after an AnySource or AnyTag receive. Status.Valid
// is false until the Op completes; a failed Op (including one that
// failed before it started, e.g. a send posted on an incoming channel)
// reports its error in Status.Err instead of a zero envelope.
func (op *Op) Status() Status {
	if op.err != nil {
		return Status{Err: op.err}
	}
	return op.req.Status()
}

// WaitAll completes every Op in order and returns the first error.
func WaitAll(t *Thread, ops ...*Op) error {
	var first error
	for _, op := range ops {
		if _, err := op.Wait(t); err != nil && first == nil {
			first = err
		}
	}
	return first
}
