package comm_test

import (
	"bytes"
	"testing"

	"pushpull/comm"
	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/smp"
)

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*31)
	}
	return b
}

func twoNode() *cluster.Cluster { return cluster.New(cluster.DefaultConfig()) }

func intranode() *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 1
	cfg.ProcsPerNode = 2
	return cluster.New(cfg)
}

func TestSendRecvRoundTrip(t *testing.T) {
	c := twoNode()
	a, b := comm.At(c, 0, 0), comm.At(c, 1, 0)
	msg := pattern(5000, 1)
	var got []byte
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		if err := a.Send(th, b.ID(), msg); err != nil {
			t.Error(err)
		}
	})
	c.Spawn(1, 0, "r", func(th *smp.Thread) {
		g, err := b.Recv(th, a.ID(), len(msg))
		if err != nil {
			t.Error(err)
			return
		}
		got = g
	})
	c.Run()
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip corrupted: got %d bytes", len(got))
	}
}

func TestTaggedMatchingOutOfOrder(t *testing.T) {
	// Two tags sent in one order, received in the other: tag lanes match
	// independently, so the receives complete in their own order.
	c := twoNode()
	a, b := comm.At(c, 0, 0), comm.At(c, 1, 0)
	odd, even := pattern(900, 3), pattern(1300, 4)
	var gotOdd, gotEven []byte
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		if err := a.Send(th, b.ID(), odd, comm.WithTag(1)); err != nil {
			t.Error(err)
		}
		if err := a.Send(th, b.ID(), even, comm.WithTag(2)); err != nil {
			t.Error(err)
		}
	})
	c.Spawn(1, 0, "r", func(th *smp.Thread) {
		g2, err := b.Recv(th, a.ID(), 2000, comm.WithTag(2))
		if err != nil {
			t.Error(err)
			return
		}
		g1, err := b.Recv(th, a.ID(), 2000, comm.WithTag(1))
		if err != nil {
			t.Error(err)
			return
		}
		gotOdd, gotEven = g1, g2
	})
	c.Run()
	if !bytes.Equal(gotOdd, odd) || !bytes.Equal(gotEven, even) {
		t.Fatal("tagged receives bound the wrong messages")
	}
}

func TestAnyTagMatchesAndReportsStatus(t *testing.T) {
	c := twoNode()
	a, b := comm.At(c, 0, 0), comm.At(c, 1, 0)
	msg := pattern(600, 5)
	var st comm.Status
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		if err := a.Send(th, b.ID(), msg, comm.WithTag(7)); err != nil {
			t.Error(err)
		}
	})
	c.Spawn(1, 0, "r", func(th *smp.Thread) {
		got, s, err := b.From(a.ID()).RecvMsg(th, 1000, comm.WithTag(comm.AnyTag))
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, msg) {
			t.Error("any-tag receive corrupted")
		}
		st = s
	})
	c.Run()
	if st.Tag != 7 || st.Source != a.ID() {
		t.Errorf("status = %+v, want tag 7 from %v", st, a.ID())
	}
}

func TestAnySourceMatchesBothSenders(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 3
	c := cluster.New(cfg)
	sink := comm.At(c, 0, 0)
	s1, s2 := comm.At(c, 1, 0), comm.At(c, 2, 0)
	for i, s := range []*comm.Comm{s1, s2} {
		s, seed := s, byte(i+1)
		c.Spawn(s.ID().Node, 0, "s", func(th *smp.Thread) {
			if err := s.Send(th, sink.ID(), pattern(2000, seed)); err != nil {
				t.Error(err)
			}
		})
	}
	seen := make(map[comm.ProcessID]int)
	c.Spawn(0, 0, "r", func(th *smp.Thread) {
		for i := 0; i < 2; i++ {
			_, st, err := sink.From(comm.AnySource).RecvMsg(th, 4000)
			if err != nil {
				t.Error(err)
				return
			}
			seen[st.Source]++
		}
	})
	c.Run()
	if seen[s1.ID()] != 1 || seen[s2.ID()] != 1 {
		t.Errorf("wildcard receive saw %v, want one message from each sender", seen)
	}
}

func TestOpTestBeforeCompletion(t *testing.T) {
	c := twoNode()
	a, b := comm.At(c, 0, 0), comm.At(c, 1, 0)
	msg := pattern(3000, 6)
	c.Spawn(1, 0, "r", func(th *smp.Thread) {
		op := b.Irecv(th, a.ID(), len(msg))
		// Polled immediately, the operation cannot have completed: the
		// send has not even started.
		if done, data, err := op.Test(); done || data != nil || err != nil {
			t.Errorf("Test before completion = (%v, %d bytes, %v), want pending", done, len(data), err)
		}
		got, err := op.Wait(th)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, msg) {
			t.Error("nonblocking receive corrupted")
		}
		if done, data, err := op.Test(); !done || err != nil || !bytes.Equal(data, msg) {
			t.Error("Test after Wait should report the completed outcome")
		}
	})
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		th.Compute(50_000) // let the receiver post and poll first
		if err := a.Send(th, b.ID(), msg); err != nil {
			t.Error(err)
		}
	})
	c.Run()
}

func TestDoubleWaitReturnsSameOutcome(t *testing.T) {
	c := twoNode()
	a, b := comm.At(c, 0, 0), comm.At(c, 1, 0)
	msg := pattern(800, 7)
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		if err := a.Send(th, b.ID(), msg); err != nil {
			t.Error(err)
		}
	})
	c.Spawn(1, 0, "r", func(th *smp.Thread) {
		op := b.Irecv(th, a.ID(), len(msg))
		first, err1 := op.Wait(th)
		second, err2 := op.Wait(th)
		if err1 != nil || err2 != nil {
			t.Errorf("double Wait errored: %v / %v", err1, err2)
		}
		if !bytes.Equal(first, msg) || !bytes.Equal(second, msg) {
			t.Error("double Wait changed the outcome")
		}
	})
	c.Run()
}

func TestWaitAllReportsFailedOp(t *testing.T) {
	c := twoNode()
	a, b := comm.At(c, 0, 0), comm.At(c, 1, 0)
	big := pattern(4000, 8)
	small := pattern(100, 9)
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		if err := a.Send(th, b.ID(), big); err != nil {
			t.Error(err)
		}
		if err := a.Send(th, b.ID(), small); err != nil {
			t.Error(err)
		}
	})
	finished := false
	var g1, g2 []byte
	c.Spawn(1, 0, "r", func(th *smp.Thread) {
		// The first receive's buffer is too small for the 4000-byte
		// message: that Op fails and releases the message, which a
		// pending receive must pick up. While it was bound to the
		// failing op, the 100-byte message became its lane's head, so
		// the released message may legally bind after it — order across
		// a failed receive is not guaranteed, delivery of both is.
		bad := b.Irecv(th, a.ID(), 500)
		good := b.Irecv(th, a.ID(), 5000)
		good2 := b.Irecv(th, a.ID(), 5000)
		if err := comm.WaitAll(th, bad, good, good2); err == nil {
			t.Error("WaitAll with an undersized receive returned nil")
		}
		if _, err := bad.Wait(th); err == nil {
			t.Error("undersized receive did not fail")
		}
		var err error
		if g1, err = good.Wait(th); err != nil {
			t.Errorf("first surviving receive failed: %v", err)
		}
		if g2, err = good2.Wait(th); err != nil {
			t.Errorf("second surviving receive failed: %v", err)
		}
		finished = true
	})
	c.Run()
	if !finished {
		t.Fatal("receiver never completed — a released message was not re-matched")
	}
	if !(bytes.Equal(g1, big) && bytes.Equal(g2, small)) &&
		!(bytes.Equal(g1, small) && bytes.Equal(g2, big)) {
		t.Errorf("surviving receives got %d and %d bytes; want the 4000- and 100-byte messages between them", len(g1), len(g2))
	}
}

func TestZeroLengthTaggedMessage(t *testing.T) {
	// A zero-length message on a tagged channel: pure envelope, on both
	// routes.
	for _, build := range []func() *cluster.Cluster{twoNode, intranode} {
		c := build()
		a := comm.At(c, 0, 0)
		var b *comm.Comm
		if len(c.Nodes) == 1 {
			b = comm.At(c, 0, 1)
		} else {
			b = comm.At(c, 1, 0)
		}
		var st comm.Status
		var got []byte = []byte{0xFF} // sentinel: must become empty
		c.Spawn(a.ID().Node, 0, "s", func(th *smp.Thread) {
			if err := a.Send(th, b.ID(), nil, comm.WithTag(42)); err != nil {
				t.Error(err)
			}
		})
		c.Spawn(b.ID().Node, b.Endpoint().CPU, "r", func(th *smp.Thread) {
			g, s, err := b.From(a.ID()).RecvMsg(th, 0, comm.WithTag(42))
			if err != nil {
				t.Error(err)
				return
			}
			got, st = g, s
		})
		c.Run()
		if len(got) != 0 {
			t.Errorf("zero-length receive returned %d bytes", len(got))
		}
		if st.Tag != 42 {
			t.Errorf("zero-length message lost its tag: %+v", st)
		}
	}
}

func TestWithBTPOverridePerMessage(t *testing.T) {
	// WithBTP(0) forces a pure announcement + pull; WithBTP(len) pushes
	// everything eagerly. Both must deliver intact, and the fully pushed
	// variant must finish the receive without a pull request.
	c := twoNode()
	a, b := comm.At(c, 0, 0), comm.At(c, 1, 0)
	msg := pattern(1200, 11)
	var first, second []byte
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		if err := a.Send(th, b.ID(), msg, comm.WithBTP(0)); err != nil {
			t.Error(err)
		}
		if err := a.Send(th, b.ID(), msg, comm.WithBTP(len(msg))); err != nil {
			t.Error(err)
		}
	})
	c.Spawn(1, 0, "r", func(th *smp.Thread) {
		var err error
		if first, err = b.Recv(th, a.ID(), len(msg)); err != nil {
			t.Error(err)
		}
		if second, err = b.Recv(th, a.ID(), len(msg)); err != nil {
			t.Error(err)
		}
	})
	c.Run()
	if !bytes.Equal(first, msg) || !bytes.Equal(second, msg) {
		t.Fatal("BTP-overridden transfers corrupted")
	}
}

func TestWithBufferUsesCallerRegion(t *testing.T) {
	c := twoNode()
	a, b := comm.At(c, 0, 0), comm.At(c, 1, 0)
	msg := pattern(2000, 12)
	src := a.Alloc(len(msg))
	dst := b.Alloc(len(msg))
	var got []byte
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		if err := a.Send(th, b.ID(), msg, comm.WithBuffer(src)); err != nil {
			t.Error(err)
		}
	})
	c.Spawn(1, 0, "r", func(th *smp.Thread) {
		g, err := b.Recv(th, a.ID(), len(msg), comm.WithBuffer(dst))
		if err != nil {
			t.Error(err)
			return
		}
		got = g
	})
	c.Run()
	if !bytes.Equal(got, msg) {
		t.Fatal("WithBuffer transfer corrupted")
	}
}

func TestDirectionMisuseFailsCleanly(t *testing.T) {
	c := twoNode()
	a, b := comm.At(c, 0, 0), comm.At(c, 1, 0)
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		if err := a.From(b.ID()).Send(th, []byte{1}); err == nil {
			t.Error("send on an incoming channel succeeded")
		}
		op := a.From(b.ID()).Isend(th, []byte{1})
		if err := comm.WaitAll(th, op); err == nil {
			t.Error("nonblocking send on an incoming channel succeeded")
		}
		if _, err := a.To(b.ID()).Recv(th, 4); err == nil {
			t.Error("receive on an outgoing channel succeeded")
		}
	})
	c.Run()
	if got := pushpull.AnySource; got.Node != -1 {
		t.Error("AnySource sentinel changed")
	}
}

func TestPerChannelIsolationUnderEagerOverflow(t *testing.T) {
	// Three channels from one node converge on one endpoint with a
	// one-slot pushed buffer and fully eager (size <= BTP) messages. The
	// receiver deliberately serves the channels in reverse send order,
	// the shape that livelocked the shared per-node-pair stream: with
	// per-channel sessions every refused fragment recovers because the
	// other channels keep draining.
	opts := pushpull.DefaultOptions()
	opts.PushedBufBytes = 2048 // one 2 KB slot
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 2
	cfg.ProcsPerNode = 3
	cfg.Opts = opts
	c := cluster.New(cfg)
	sink := comm.At(c, 1, 0)
	const n = 512 // below the 760 B BTP: fully eager, no pull phase
	for p := 0; p < 3; p++ {
		s := comm.At(c, 0, p)
		seed := byte(p + 1)
		c.Spawn(0, s.Endpoint().CPU, "s", func(th *smp.Thread) {
			if err := s.Send(th, sink.ID(), pattern(n, seed)); err != nil {
				t.Error(err)
			}
		})
	}
	var order []int
	c.Spawn(1, 0, "r", func(th *smp.Thread) {
		th.Compute(200_000)                // arrive late: every fragment parks or is refused
		for _, p := range []int{2, 1, 0} { // reverse send order
			got, err := sink.Recv(th, comm.ProcessID{Node: 0, Proc: p}, n)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, pattern(n, byte(p+1))) {
				t.Errorf("channel %d corrupted", p)
			}
			order = append(order, p)
		}
	})
	c.Run()
	if len(order) != 3 {
		t.Fatalf("only %d of 3 cross-channel receives completed (livelock?)", len(order))
	}
}

// Status must be self-describing: a completed receive's Status carries
// Valid=true with the matched envelope, while a pre-failed op (a send
// posted on an incoming channel) reports its error in Status.Err
// instead of a zero envelope indistinguishable from a real rank-0/tag-0
// match. An op that has not completed yet is also not Valid.
func TestStatusValidAndErrStates(t *testing.T) {
	c := twoNode()
	a, b := comm.At(c, 0, 0), comm.At(c, 1, 0)
	var recvSt, pendSt, failSt comm.Status
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		// Pre-failed op: misdirected send.
		failSt = a.From(b.ID()).Isend(th, []byte{1}).Status()
		if err := a.Send(th, b.ID(), pattern(300, 9), comm.WithTag(4)); err != nil {
			t.Error(err)
		}
	})
	c.Spawn(1, 0, "r", func(th *smp.Thread) {
		op := b.Irecv(th, a.ID(), 1000, comm.WithTag(comm.AnyTag))
		pendSt = op.Status() // no virtual time has passed: not completed
		got, err := op.Wait(th)
		if err != nil {
			t.Error(err)
			return
		}
		if len(got) != 300 {
			t.Errorf("receive returned %d bytes, want 300", len(got))
		}
		recvSt = op.Status()
	})
	c.Run()
	if !recvSt.Valid || recvSt.Err != nil || recvSt.Tag != 4 || recvSt.Source != a.ID() {
		t.Errorf("completed receive status = %+v, want valid tag-4 envelope from %v", recvSt, a.ID())
	}
	if pendSt.Valid {
		t.Errorf("uncompleted op's status claims Valid: %+v", pendSt)
	}
	if failSt.Valid || failSt.Err == nil {
		t.Errorf("pre-failed op's status = %+v, want Err set and Valid false", failSt)
	}
}

// An AnyTag wildcard never matches reserved-tag traffic: the
// application-range restriction that keeps wildcards from swallowing
// collective rounds (the end-to-end pin lives in package coll).
func TestAnyTagIgnoresReservedTagTraffic(t *testing.T) {
	c := twoNode()
	a, b := comm.At(c, 0, 0), comm.At(c, 1, 0)
	resv := pattern(200, 3)
	app := pattern(400, 5)
	var wildGot, resvGot []byte
	var wildSt comm.Status
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		// Reserved-tag message first: it must NOT satisfy the wildcard.
		if err := a.Send(th, b.ID(), resv, comm.WithTag(comm.ReservedTag+2)); err != nil {
			t.Error(err)
		}
		if err := a.Send(th, b.ID(), app, comm.WithTag(6)); err != nil {
			t.Error(err)
		}
	})
	c.Spawn(1, 0, "r", func(th *smp.Thread) {
		got, st, err := b.From(a.ID()).RecvMsg(th, 1000, comm.WithTag(comm.AnyTag))
		if err != nil {
			t.Error(err)
			return
		}
		wildGot, wildSt = got, st
		// The reserved-tag message is still there for its exact tag.
		if resvGot, err = b.Recv(th, a.ID(), 1000, comm.WithTag(comm.ReservedTag+2)); err != nil {
			t.Error(err)
		}
	})
	c.Run()
	if !bytes.Equal(wildGot, app) || wildSt.Tag != 6 {
		t.Errorf("wildcard bound tag %d (%d bytes), want the tag-6 application message", wildSt.Tag, len(wildGot))
	}
	if !bytes.Equal(resvGot, resv) {
		t.Error("reserved-tag message was not delivered to its exact-tag receive")
	}
}
