// Package-level benchmarks: one testing.B benchmark per table/figure of
// the paper, so `go test -bench=. -benchmem` regenerates the whole
// evaluation. Each benchmark reports the paper's headline metric for its
// figure as custom benchmark units alongside the usual wall-clock cost of
// simulating it.
//
// cmd/pushpull-bench prints the full row-by-row tables; these benchmarks
// exist so standard Go tooling can track the reproduction end to end.
package main

import (
	"testing"

	"pushpull/internal/bench"
	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
)

// benchIters keeps benchmark wall time reasonable while remaining well
// above the trimmed-mean floor; cmd/pushpull-bench defaults to the
// paper's 1000.
const benchIters = 200

func paperConfig(mode pushpull.Mode, pushedBuf int) cluster.Config {
	opts := pushpull.DefaultOptions()
	opts.Mode = mode
	opts.PushedBufBytes = pushedBuf
	cfg := cluster.DefaultConfig()
	cfg.Opts = opts
	return cfg
}

// BenchmarkFig3IntranodeLatency regenerates Figure 3: intranode
// single-trip latency of the three mechanisms, pushed buffer 12 KB.
// Reported metric: Push-Pull latency at 10 B (paper: 7.5 µs).
func BenchmarkFig3IntranodeLatency(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		for _, mode := range []pushpull.Mode{pushpull.PushZero, pushpull.PushPull, pushpull.PushAll} {
			for _, n := range []int{10, 1000, 4000, 5000, 8192} {
				w := bench.Workload{Cluster: paperConfig(mode, 12<<10), Intra: true, Size: n, Iters: benchIters}
				m := bench.SingleTrip(w).TrimmedMean
				if mode == pushpull.PushPull && n == 10 {
					last = m
				}
			}
		}
	}
	b.ReportMetric(last, "µs/10B-trip")
}

// BenchmarkFig4OptimizationVariants regenerates Figure 4: internode
// latency of the four optimization combinations. Reported metric: full
// optimization at 1400 B.
func BenchmarkFig4OptimizationVariants(b *testing.B) {
	var full float64
	for i := 0; i < b.N; i++ {
		for _, v := range []struct {
			mask, overlap bool
		}{{false, false}, {true, false}, {false, true}, {true, true}} {
			opts := pushpull.DefaultOptions()
			opts.MaskTranslation = v.mask
			opts.UserTrigger = v.mask
			opts.OverlapAck = v.overlap
			cfg := cluster.DefaultConfig()
			cfg.Opts = opts
			for _, n := range []int{4, 760, 1400} {
				w := bench.Workload{Cluster: cfg, Size: n, Iters: benchIters}
				m := bench.SingleTrip(w).TrimmedMean
				if v.mask && v.overlap && n == 1400 {
					full = m
				}
			}
		}
	}
	b.ReportMetric(full, "µs/1400B-trip")
}

// BenchmarkFig6EarlyReceiver regenerates Figure 6 (left). Reported
// metric: Push-Pull at 8192 B.
func BenchmarkFig6EarlyReceiver(b *testing.B) {
	benchmarkFig6(b, 500_000, 100_000)
}

// BenchmarkFig6LateReceiver regenerates Figure 6 (right), including the
// Push-All pushed-buffer collapse. Reported metric: Push-Pull at 8192 B.
func BenchmarkFig6LateReceiver(b *testing.B) {
	benchmarkFig6(b, 100_000, 300_000)
}

func benchmarkFig6(b *testing.B, x, y int64) {
	var pp float64
	for i := 0; i < b.N; i++ {
		for _, mode := range []pushpull.Mode{pushpull.PushZero, pushpull.PushPull, pushpull.PushAll} {
			for _, n := range []int{1024, 3072, 8192} {
				w := bench.Workload{Cluster: paperConfig(mode, 4096), Size: n, Iters: 50}
				m := bench.EarlyLate(w, x, y).TrimmedMean
				if mode == pushpull.PushPull && n == 8192 {
					pp = m
				}
			}
		}
	}
	b.ReportMetric(pp, "µs/8192B-trip")
}

// BenchmarkBTP2Sweep regenerates §5.2 test 1 (BTP(1)=0, varying BTP(2)).
// Reported metric: the sweep's arg-min.
func BenchmarkBTP2Sweep(b *testing.B) {
	var bestX float64
	for i := 0; i < b.N; i++ {
		bestY := 0.0
		for btp2 := 0; btp2 <= 1400; btp2 += 200 {
			opts := pushpull.DefaultOptions()
			opts.BTP1, opts.BTP2, opts.BTP = 0, btp2, btp2
			cfg := cluster.DefaultConfig()
			cfg.Opts = opts
			w := bench.Workload{Cluster: cfg, Size: 1400, Iters: benchIters}
			m := bench.SingleTrip(w).TrimmedMean
			if btp2 == 0 || m < bestY {
				bestX, bestY = float64(btp2), m
			}
		}
	}
	b.ReportMetric(bestX, "best-BTP2-bytes")
}

// BenchmarkBTP1Sweep regenerates §5.2 test 2 (BTP(2)=680, varying BTP(1)).
func BenchmarkBTP1Sweep(b *testing.B) {
	var at80 float64
	for i := 0; i < b.N; i++ {
		for btp1 := 0; btp1 <= 400; btp1 += 80 {
			opts := pushpull.DefaultOptions()
			opts.BTP1, opts.BTP2, opts.BTP = btp1, 680, btp1+680
			cfg := cluster.DefaultConfig()
			cfg.Opts = opts
			w := bench.Workload{Cluster: cfg, Size: 1400, Iters: benchIters}
			m := bench.SingleTrip(w).TrimmedMean
			if btp1 == 80 {
				at80 = m
			}
		}
	}
	b.ReportMetric(at80, "µs@BTP1=80")
}

// BenchmarkHeadlineIntranodeLatency: paper 7.5 µs for a 10-byte message.
func BenchmarkHeadlineIntranodeLatency(b *testing.B) {
	var m float64
	for i := 0; i < b.N; i++ {
		w := bench.Workload{Cluster: paperConfig(pushpull.PushPull, 12<<10), Intra: true, Size: 10, Iters: benchIters}
		m = bench.SingleTrip(w).TrimmedMean
	}
	b.ReportMetric(m, "µs(paper:7.5)")
}

// BenchmarkHeadlineIntranodeBandwidth: paper 350.9 MB/s peak.
func BenchmarkHeadlineIntranodeBandwidth(b *testing.B) {
	var m float64
	for i := 0; i < b.N; i++ {
		w := bench.Workload{Cluster: paperConfig(pushpull.PushPull, 12<<10), Intra: true, Size: 16384, Iters: 100}
		m = bench.Bandwidth(w)
	}
	b.ReportMetric(m, "MB/s(paper:350.9)")
}

// BenchmarkHeadlineInternodeLatency: paper 34.9 µs single trip.
func BenchmarkHeadlineInternodeLatency(b *testing.B) {
	var m float64
	for i := 0; i < b.N; i++ {
		w := bench.Workload{Cluster: paperConfig(pushpull.PushPull, 4096), Size: 4, Iters: benchIters}
		m = bench.SingleTrip(w).TrimmedMean
	}
	b.ReportMetric(m, "µs(paper:34.9)")
}

// BenchmarkHeadlineInternodeBandwidth: paper 12.1 MB/s peak.
func BenchmarkHeadlineInternodeBandwidth(b *testing.B) {
	var m float64
	for i := 0; i < b.N; i++ {
		w := bench.Workload{Cluster: paperConfig(pushpull.PushPull, 4096), Size: 65536, Iters: 30}
		m = bench.Bandwidth(w)
	}
	b.ReportMetric(m, "MB/s(paper:12.1)")
}

// BenchmarkHeadlinePushAllRecovery: the ~150 ms go-back-N recovery of a
// 3072 B Push-All transfer into a full 4 KB pushed buffer.
func BenchmarkHeadlinePushAllRecovery(b *testing.B) {
	var ms float64
	for i := 0; i < b.N; i++ {
		w := bench.Workload{Cluster: paperConfig(pushpull.PushAll, 4096), Size: 3072, Iters: 1}
		ms = bench.OneShot(w, sim.Duration(sim.Millisecond)) / 1000
	}
	b.ReportMetric(ms, "ms(paper:~150)")
}

// BenchmarkEngineThroughput measures the raw discrete-event kernel:
// events executed per second of wall time while simulating ping-pongs.
func BenchmarkEngineThroughput(b *testing.B) {
	w := bench.Workload{Cluster: paperConfig(pushpull.PushPull, 4096), Size: 760, Iters: 100}
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.SingleTrip(w)
		events += 1 // one workload per iteration; wall time is the metric
	}
	_ = events
}
