module pushpull

go 1.21
