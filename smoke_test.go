package main

import (
	"testing"

	"pushpull/internal/bench"
	"pushpull/internal/cluster"
	"pushpull/internal/scenario"
)

// TestSmoke is the root package's fast end-to-end check (the other
// files here are benchmark-only, which `go test ./...` reports as "no
// tests to run"): the paper testbed builds, a ping-pong completes with
// a plausible latency, and the scenario engine agrees with the bench
// harness on the identical workload.
func TestSmoke(t *testing.T) {
	w := bench.Workload{Cluster: cluster.DefaultConfig(), Size: 1400, Iters: 20}
	sum := bench.SingleTrip(w)
	if sum.N != 20 {
		t.Fatalf("ping-pong completed %d of 20 iterations", sum.N)
	}
	// The paper's internode 1400 B single trip is on the order of 150 µs
	// on this testbed; a grossly different number means a broken build.
	if sum.TrimmedMean < 10 || sum.TrimmedMean > 10_000 {
		t.Fatalf("implausible 1400 B internode single-trip latency: %.2f µs", sum.TrimmedMean)
	}

	spec := scenario.DefaultSpec()
	spec.Traffic.Messages = 20
	res, err := scenario.Run(spec, scenario.KeepSamples())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 20 {
		t.Fatalf("scenario run kept %d of 20 samples", len(res.Samples))
	}
	// Same cluster, same seed, same loop: the two harness entry points
	// must produce identical samples.
	raw := bench.SingleTripSamples(w)
	for i := range raw {
		if raw[i] != res.Samples[i] {
			t.Fatalf("sample %d: bench %.3f µs vs scenario %.3f µs — the harnesses diverged", i, raw[i], res.Samples[i])
		}
	}
}
