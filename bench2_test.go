// Benchmarks for the extension experiments: the three-phase baseline,
// lossy links, the hub topology, the adaptive BTP controller and the
// collective layer. Like bench_test.go, each reports its experiment's
// headline metric as a custom unit.
package main

import (
	"testing"

	"pushpull/coll"
	"pushpull/internal/adapt"
	"pushpull/internal/bench"
	"pushpull/internal/cluster"
	"pushpull/internal/gbn"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

// BenchmarkThreePhaseBaseline: the §1 motivation — the classical
// handshake's short-message penalty over full-opt Push-Pull.
func BenchmarkThreePhaseBaseline(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		opts := pushpull.DefaultOptions()
		opts.Mode = pushpull.ThreePhase
		opts.MaskTranslation = false
		opts.OverlapAck = false
		opts.UserTrigger = false
		cfg := cluster.DefaultConfig()
		cfg.Opts = opts
		tp := bench.SingleTrip(bench.Workload{Cluster: cfg, Size: 4, Iters: benchIters}).TrimmedMean
		pp := bench.SingleTrip(bench.Workload{Cluster: paperConfig(pushpull.PushPull, 4096), Size: 4, Iters: benchIters}).TrimmedMean
		gap = tp - pp
	}
	b.ReportMetric(gap, "µs-handshake-penalty@4B")
}

// BenchmarkLossRecovery: 8 KB bandwidth at 5% frame loss (RTO 2 ms),
// exercising go-back-N end to end.
func BenchmarkLossRecovery(b *testing.B) {
	var mbps float64
	for i := 0; i < b.N; i++ {
		opts := pushpull.DefaultOptions()
		opts.GBN = gbn.Config{Window: 8, RTO: 2 * sim.Millisecond}
		cfg := cluster.DefaultConfig()
		cfg.Opts = opts
		cfg.Net.LossRate = 0.05
		mbps = bench.Bandwidth(bench.Workload{Cluster: cfg, Size: 8192, Iters: 100})
	}
	b.ReportMetric(mbps, "MB/s@5%loss")
}

// BenchmarkHubTopology: the half-duplex penalty — 8 KB single-trip
// latency over a hub relative to back-to-back cabling.
func BenchmarkHubTopology(b *testing.B) {
	var hub float64
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultConfig()
		cfg.UseHub = true
		hub = bench.SingleTrip(bench.Workload{Cluster: cfg, Size: 8192, Iters: benchIters}).TrimmedMean
	}
	b.ReportMetric(hub, "µs/8KB-trip-hub")
}

// BenchmarkAdaptiveBTP: wire bytes a late receiver wastes per message
// under the AIMD controller (static BTP=760 wastes 680 B/message into a
// one-slot pushed buffer).
func BenchmarkAdaptiveBTP(b *testing.B) {
	var wastedPerMsg float64
	for i := 0; i < b.N; i++ {
		const msgs = 100
		cfg := cluster.DefaultConfig()
		cfg.Opts.PushedBufBytes = 2048
		c := cluster.New(cfg)
		ac := adapt.DefaultConfig()
		ac.Max = 2048
		c.Stacks[0].SetAdapter(adapt.NewController(ac))
		sender := c.Endpoint(0, 0)
		receiver := c.Endpoint(1, 0)
		msg := make([]byte, 3000)
		credit := []byte{1}
		src := sender.Alloc(3000)
		creditDst := sender.Alloc(1)
		dst := receiver.Alloc(3000)
		creditSrc := receiver.Alloc(1)
		c.Nodes[0].Spawn("sender", sender.CPU, func(t *smp.Thread) {
			for j := 0; j < msgs; j++ {
				if _, err := sender.Recv(t, receiver.ID, creditDst, 1); err != nil {
					b.Error(err)
					return
				}
				if err := sender.Send(t, receiver.ID, src, msg); err != nil {
					b.Error(err)
					return
				}
			}
		})
		c.Nodes[1].Spawn("receiver", receiver.CPU, func(t *smp.Thread) {
			for j := 0; j < msgs; j++ {
				if err := receiver.Send(t, sender.ID, creditSrc, credit); err != nil {
					b.Error(err)
					return
				}
				t.Compute(60_000) // persistently late receiver
				if _, err := receiver.Recv(t, sender.ID, dst, 3000); err != nil {
					b.Error(err)
					return
				}
			}
		})
		c.Run()
		wastedPerMsg = float64(c.Stacks[1].DiscardedBytes()) / msgs
	}
	b.ReportMetric(wastedPerMsg, "wasted-B/msg(static:680)")
}

// BenchmarkCollectiveAllReduce: 4-node 1 KB allreduce by recursive
// doubling under full-opt Push-Pull.
func BenchmarkCollectiveAllReduce(b *testing.B) {
	var perOp float64
	for i := 0; i < b.N; i++ {
		const iters = 30
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 4
		cfg.Opts.PushedBufBytes = 64 << 10
		w := coll.NewWorld(cluster.New(cfg))
		var start, end sim.Time
		w.Run(func(r *coll.Rank) {
			data := make([]byte, 1024)
			r.Barrier()
			if r.ID() == 0 {
				start = r.Thread().Now()
			}
			for j := 0; j < iters; j++ {
				r.AllReduce(data, coll.XorBytes, coll.WithAlgorithm(coll.RecursiveDoubling))
			}
			r.Barrier()
			if r.ID() == 0 {
				end = r.Thread().Now()
			}
		})
		perOp = end.Sub(start).Microseconds() / iters
	}
	b.ReportMetric(perOp, "µs/allreduce-1KB-4nodes")
}

// longVectorOp runs iters of body on the 8-rank switched COMP the
// long-vector rows use, via the harness the longvector bench experiment
// shares.
func longVectorOp(iters int, body func(r *coll.Rank)) (perOp, maxTxPerOp float64) {
	return bench.LongVectorCollective(8, iters, body)
}

const longVecBytes = 64 << 10

// BenchmarkLongVectorBcast: 64 KiB broadcast through 8 switched ranks —
// the segmented (pipelined) ring against the store-and-forward chain.
func BenchmarkLongVectorBcast(b *testing.B) {
	var ring, seg float64
	for i := 0; i < b.N; i++ {
		data := make([]byte, longVecBytes)
		run := func(opts ...coll.Opt) float64 {
			perOp, _ := longVectorOp(5, func(r *coll.Rank) {
				var src []byte
				if r.ID() == 0 {
					src = data
				}
				r.Bcast(0, src, longVecBytes, opts...)
			})
			return perOp
		}
		ring = run(coll.WithAlgorithm(coll.Ring))
		seg = run(coll.WithAlgorithm(coll.RingSegmented), coll.WithSegment(8192))
	}
	b.ReportMetric(ring, "µs/ring")
	b.ReportMetric(seg, "µs/ring-seg")
	b.ReportMetric(ring/seg, "ring/ring-seg-speedup")
}

// BenchmarkLongVectorAllReduce: 64 KiB allreduce on 8 switched ranks —
// reduce-scatter + allgather against the rooted tree, in time and in
// hottest-NIC volume.
func BenchmarkLongVectorAllReduce(b *testing.B) {
	var treeUS, rsagUS, treeVol, rsagVol float64
	for i := 0; i < b.N; i++ {
		run := func(alg coll.Algorithm) (float64, float64) {
			return longVectorOp(5, func(r *coll.Rank) {
				data := make([]byte, longVecBytes)
				for j := range data {
					data[j] = byte(r.ID() + j)
				}
				r.AllReduce(data, coll.XorBytes, coll.WithAlgorithm(alg))
			})
		}
		treeUS, treeVol = run(coll.Tree)
		rsagUS, rsagVol = run(coll.RSAG)
	}
	b.ReportMetric(treeUS, "µs/tree")
	b.ReportMetric(rsagUS, "µs/rs-ag")
	b.ReportMetric(treeVol/1024, "KiB/op-hot-node-tree")
	b.ReportMetric(rsagVol/1024, "KiB/op-hot-node-rs-ag")
}

// The long-vector acceptance bar, pinned deterministically: at 64 KiB
// on 8 ranks the segmented ring Bcast completes in less virtual time
// than the plain ring, and rs-ag's busiest node moves fewer wire bytes
// (and finishes sooner) than the tree's root.
func TestLongVectorAlgorithmsWin(t *testing.T) {
	data := make([]byte, longVecBytes)
	bcast := func(opts ...coll.Opt) float64 {
		perOp, _ := longVectorOp(3, func(r *coll.Rank) {
			var src []byte
			if r.ID() == 0 {
				src = data
			}
			r.Bcast(0, src, longVecBytes, opts...)
		})
		return perOp
	}
	ring := bcast(coll.WithAlgorithm(coll.Ring))
	seg := bcast(coll.WithAlgorithm(coll.RingSegmented), coll.WithSegment(8192))
	if seg >= ring {
		t.Errorf("segmented ring bcast %.1f µs, plain ring %.1f µs — pipelining lost", seg, ring)
	}

	allreduce := func(alg coll.Algorithm) (float64, float64) {
		return longVectorOp(3, func(r *coll.Rank) {
			vec := make([]byte, longVecBytes)
			for j := range vec {
				vec[j] = byte(r.ID() + j)
			}
			r.AllReduce(vec, coll.XorBytes, coll.WithAlgorithm(alg))
		})
	}
	treeUS, treeVol := allreduce(coll.Tree)
	rsagUS, rsagVol := allreduce(coll.RSAG)
	if rsagVol >= treeVol {
		t.Errorf("rs-ag hottest node moved %.0f B/op, tree %.0f B/op — volume balance lost", rsagVol, treeVol)
	}
	if rsagUS >= treeUS {
		t.Errorf("rs-ag %.1f µs/op, tree %.1f µs/op — bandwidth optimality lost", rsagUS, treeUS)
	}
}

// BenchmarkScaleAllGather: 8 KB ring allgather on a six-node switched
// COMP — the multi-node scaling the paper's conclusion reaches toward.
func BenchmarkScaleAllGather(b *testing.B) {
	var perOp float64
	for i := 0; i < b.N; i++ {
		const iters = 10
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 6
		cfg.UseSwitch = true
		cfg.Opts.PushedBufBytes = 64 << 10
		w := coll.NewWorld(cluster.New(cfg))
		var start, end sim.Time
		w.Run(func(r *coll.Rank) {
			data := make([]byte, 8192)
			r.Barrier()
			if r.ID() == 0 {
				start = r.Thread().Now()
			}
			for j := 0; j < iters; j++ {
				r.AllGather(data, 8192)
			}
			r.Barrier()
			if r.ID() == 0 {
				end = r.Thread().Now()
			}
		})
		perOp = end.Sub(start).Microseconds() / iters
	}
	b.ReportMetric(perOp, "µs/allgather-8KB-6nodes")
}
