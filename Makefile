GO ?= go

# ci is the documented tier-1 gate: vet, the determinism/tier/pooling
# lint pass, build, the full test suite under the race detector, one
# iteration of every benchmark (so the benchmark-only files at the repo
# root are compiled AND executed), the goroutine-leak check, the sweep
# determinism check, the fault-injection determinism check, the PDES
# worker-independence check, the lab artifact gate, and a smoke run of
# every example binary.
.PHONY: ci
ci: vet lint build race bench leak-check sweep-check fault-check pdes-check lab-check examples

.PHONY: vet
vet:
	$(GO) vet ./...

# lint runs gofmt cleanliness plus the five pushpull-lint analyzers
# (walltime, globalrand, maprange, taskletblock, poolretain — see
# README "Static analysis"). Findings exit nonzero; acknowledged sites
# need a //pushpull:lint-allow <analyzer> <reason> directive.
.PHONY: lint
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "lint FAILED: gofmt needed on:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi
	$(GO) run ./cmd/pushpull-lint ./...
	@echo "lint OK"

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

# bench runs every benchmark exactly once: a smoke pass, not a
# measurement (use `go test -bench . -benchtime 10x .` for numbers).
# The sweep includes BenchmarkTaskletSwitch and BenchmarkProcessSwitch,
# the pair BENCH_sim.json tracks for the two execution tiers.
.PHONY: bench
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# leak-check pins the engine-teardown contract: a sweep whose points
# exhaust their virtual-time budget (rank threads and protocol actors
# still parked) must return runtime.NumGoroutine to baseline — the
# regression test for the parked-goroutine leak Engine.Shutdown fixes.
.PHONY: leak-check
leak-check:
	$(GO) test ./internal/scenario -run 'TestSweepGoroutineLeak|TestRunShutdownAfterSuccess' -count=1
	$(GO) test ./internal/sim -run TestShutdown -count=1

# fuzz gives the go-back-N delivery property a short fuzzing budget.
.PHONY: fuzz
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzGoBackNDelivery -fuzztime 30s ./internal/gbn/

# scenarios regenerates the builtin scenario results as JSON.
.PHONY: scenarios
scenarios:
	$(GO) run ./cmd/pushpull-scen run -out scenarios.json $$($(GO) run ./cmd/pushpull-scen list | awk '{print $$1}')

# digests recaptures the pinned builtin-scenario digests
# (internal/scenario/testdata/digests.json). Recapture is legitimate
# ONLY for wire-behavior changes — a protocol redesign, a cost-model
# change, a new builtin scenario; see README "Pinned digests". Review
# the diff: a digest that moves under a pure optimization is a bug.
.PHONY: digests
digests:
	$(GO) test ./internal/scenario -run TestBuiltinDigestsPinned -update -v

# examples builds and runs every example binary in its -short
# configuration. Each example drives its cluster under a virtual-time
# budget (cluster.RunWithin), so a protocol stall fails the smoke run
# with a nonzero exit instead of spinning forever.
.PHONY: examples
examples:
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d -short >/dev/null || exit 1; \
	done; \
	echo "examples OK"

# sweep-check proves parallelism never changes results: each builtin CI
# grid must produce the same aggregate digest on 1 worker and on a real
# worker pool. smoke-grid covers the point-to-point patterns; coll-smoke
# covers the collective family's algorithm axis; fault-smoke covers the
# faultPlans axis (degradation must be as deterministic as traffic);
# proto-grid covers the transport axes (procsPerNode, rtoMs, gbnWindow)
# on a lossy wire. The parallel leg pins 8 workers, not GOMAXPROCS: on a
# single-core CI box GOMAXPROCS resolves to 1 and would compare two
# serial runs, never exercising the pool at all.

# fault-check pins the fault-injection subsystem: the lossy/blackout
# suites run under the race detector, and every fault-family builtin
# must reproduce its digest byte-for-byte across two runs at two seeds —
# a fault plan that perturbs the engine's RNG stream or compiles
# nondeterministically breaks the diff immediately.
.PHONY: fault-check
fault-check:
	$(GO) test -race ./internal/fault ./internal/gbn -count=1
	$(GO) test -race ./internal/scenario -run 'TestFault|TestPeerUnreachable|TestBlackout' -count=1
	@for sc in blackout-recovery flaky-link-allreduce flapping-wavefront port-blackout-pipeline; do \
		for seed in 1 7; do \
			d1=$$($(GO) run ./cmd/pushpull-scen run -seed $$seed $$sc 2>&1 >/dev/null | sed -n 's/.*digest //p') || exit 1; \
			d2=$$($(GO) run ./cmd/pushpull-scen run -seed $$seed $$sc 2>&1 >/dev/null | sed -n 's/.*digest //p') || exit 1; \
			if [ -z "$$d1" ] || [ "$$d1" != "$$d2" ]; then \
				echo "fault-check FAILED: $$sc seed $$seed not reproducible ($$d1 vs $$d2)"; \
				exit 1; \
			fi; \
		done; \
		echo "fault-check OK ($$sc)"; \
	done

# lab-check pins the lab subsystem's two CI guarantees: (1) the smoke
# study's artifact body is byte-identical at 1 worker and 8 workers —
# the sweep-check guarantee extended to whole studies — and (2) a fresh
# capture matches the checked-in baseline under `pushpull-lab compare`
# (job digests exact, metrics within tolerance). A digest change here
# means the study ran a different computation; recapture via
# `make lab-baseline` is legitimate ONLY for the same wire-behavior
# changes that justify `make digests`.
.PHONY: lab-check
lab-check:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/pushpull-lab run -workers 1 -out "$$tmp/w1.json" smoke >/dev/null 2>&1 || exit 1; \
	$(GO) run ./cmd/pushpull-lab run -workers 8 -out "$$tmp/w8.json" smoke >/dev/null 2>&1 || exit 1; \
	$(GO) run ./cmd/pushpull-lab show -body "$$tmp/w1.json" > "$$tmp/w1.body"; \
	$(GO) run ./cmd/pushpull-lab show -body "$$tmp/w8.json" > "$$tmp/w8.body"; \
	if ! diff -q "$$tmp/w1.body" "$$tmp/w8.body" >/dev/null; then \
		echo "lab-check FAILED: workers changed the smoke artifact body"; \
		diff "$$tmp/w1.body" "$$tmp/w8.body" | head -20; \
		exit 1; \
	fi; \
	echo "lab-check OK: smoke artifact body byte-identical at 1 and 8 workers"; \
	$(GO) run ./cmd/pushpull-lab compare internal/lab/testdata/baseline-smoke.json "$$tmp/w1.json" || { \
		echo "lab-check FAILED: fresh smoke capture diverges from the checked-in baseline"; \
		exit 1; \
	}

# lab-baseline recaptures the checked-in smoke baseline artifact that
# lab-check compares against. Like `make digests`, recapture is
# legitimate ONLY for intentional wire-behavior or metric-schema
# changes — review the diff before committing it.
.PHONY: lab-baseline
lab-baseline:
	$(GO) run ./cmd/pushpull-lab run -workers 4 -out internal/lab/testdata/baseline-smoke.json smoke

# bench-capture appends one wall-clock capture of the tracked
# internal/sim microbenchmarks to the BENCH_sim.json series, then times
# the PDES speedup probe (sequential vs 1/2/4 workers) into
# BENCH_pdes.json (the lab's replacement for hand-editing those files
# after a -bench run). Speedups > 1 need a multi-core box; single-core
# CI captures legitimately record ~1.0 and stamp their gomaxprocs.
# Pass a context line: make bench-capture COMMENT="what changed".
.PHONY: bench-capture
bench-capture:
	$(GO) run ./cmd/pushpull-lab gobench -comment "$(COMMENT)"

# pdes-check pins the conservative-PDES contract: (1) the partition's
# property and digest tests run under the race detector (the superstep
# barrier and shard handoff are the raciest code in the repo), and
# (2) every builtin scenario produces a byte-identical digest at 1 and
# 4 workers through the CLI — at the specs' own seeds AND at an
# override seed, because data-dependent patterns (wavefront) exercise
# different cross-shard interleaves per seed. Note the comparison is
# 1 vs 4 workers on
# the partition, not partition vs sequential: sharded runs draw from
# split per-shard RNG streams, so their digests legitimately differ
# from the sequential engine's (which the pinned-digest capture covers).
.PHONY: pdes-check
pdes-check:
	$(GO) test -race ./internal/sim -run 'TestPDES|TestPartition|TestPlanWindow' -count=1
	$(GO) test -race ./internal/scenario -run 'TestPDES' -count=1
	@scens=$$($(GO) run ./cmd/pushpull-scen list | awk '{print $$1}'); \
	for seed in 0 7; do \
		d1=$$($(GO) run ./cmd/pushpull-scen run -par 1 -seed $$seed $$scens 2>&1 >/dev/null | sed -n 's/.*digest //p') || exit 1; \
		d4=$$($(GO) run ./cmd/pushpull-scen run -par 4 -seed $$seed $$scens 2>&1 >/dev/null | sed -n 's/.*digest //p') || exit 1; \
		if [ -z "$$d1" ]; then \
			echo "pdes-check FAILED: no digests captured from the builtin runs (seed $$seed)"; \
			exit 1; \
		fi; \
		if [ "$$d1" != "$$d4" ]; then \
			echo "pdes-check FAILED: worker count changed at least one builtin digest (seed $$seed)"; \
			echo "--- 1 worker / +++ 4 workers:"; \
			printf '%s\n' "$$d1" > /tmp/pdes-w1.$$$$; printf '%s\n' "$$d4" | diff /tmp/pdes-w1.$$$$ - | head -20; rm -f /tmp/pdes-w1.$$$$; \
			exit 1; \
		fi; \
		echo "pdes-check OK: $$(printf '%s\n' "$$d1" | wc -l) builtin digests byte-identical at 1 and 4 workers (seed $$seed)"; \
	done

.PHONY: sweep-check
sweep-check:
	@for sw in smoke-grid coll-smoke fault-smoke proto-grid; do \
		d1=$$($(GO) run ./cmd/pushpull-scen sweep -workers 1 -digest $$sw) || exit 1; \
		dn=$$($(GO) run ./cmd/pushpull-scen sweep -workers 8 -digest $$sw) || exit 1; \
		if [ "$$d1" != "$$dn" ]; then \
			echo "sweep-check FAILED: workers changed $$sw's aggregate digest"; \
			echo "  1 worker:  $$d1"; \
			echo "  N workers: $$dn"; \
			exit 1; \
		fi; \
		echo "sweep-check OK ($$sw): $$d1"; \
	done
