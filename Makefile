GO ?= go

# ci is the documented tier-1 gate: vet, build, the full test suite
# under the race detector, and one iteration of every benchmark (so the
# benchmark-only files at the repo root are compiled AND executed).
.PHONY: ci
ci: vet build race bench

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

# bench runs every benchmark exactly once: a smoke pass, not a
# measurement (use `go test -bench . -benchtime 10x .` for numbers).
.PHONY: bench
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# fuzz gives the go-back-N delivery property a short fuzzing budget.
.PHONY: fuzz
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzGoBackNDelivery -fuzztime 30s ./internal/gbn/

# scenarios regenerates the builtin scenario results as JSON.
.PHONY: scenarios
scenarios:
	$(GO) run ./cmd/pushpull-scen run -out scenarios.json $$($(GO) run ./cmd/pushpull-scen list | awk '{print $$1}')
