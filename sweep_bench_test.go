// Benchmarks for the parallel sweep runner: wall-clock cost of a whole
// parameter study, serial vs worker pool. The aggregate digest is
// asserted on every iteration, so these double as a continuous check
// that parallelism never changes results.
package main

import (
	"testing"

	"pushpull/internal/scenario"
)

func runSweepBenchmark(b *testing.B, workers int) {
	sw, err := scenario.SweepByName("smoke-grid")
	if err != nil {
		b.Fatal(err)
	}
	var digest string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scenario.RunSweep(sw, workers)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed != 0 {
			b.Fatalf("%d of %d points failed", res.Failed, res.Points)
		}
		if digest == "" {
			digest = res.Digest
		} else if res.Digest != digest {
			b.Fatalf("digest changed between iterations: %s vs %s", digest, res.Digest)
		}
		b.ReportMetric(float64(res.Points), "points")
	}
}

// BenchmarkSweepSerial is the 8-point smoke grid on one worker.
func BenchmarkSweepSerial(b *testing.B) { runSweepBenchmark(b, 1) }

// BenchmarkSweepParallel is the same grid on GOMAXPROCS workers; the
// speedup over BenchmarkSweepSerial is the machine's core scaling.
func BenchmarkSweepParallel(b *testing.B) { runSweepBenchmark(b, 0) }
